#include "compile/schedule.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "nn/layers.hh"

namespace forms::compile {

double
nodeWork(const Node &n, WorkModel model)
{
    FORMS_ASSERT(!n.outShape.empty(),
                 "nodeWork: run inferShapes() before partitioning");
    int64_t out_elems = 1;
    for (int64_t d : n.outShape)
        out_elems *= d;
    const bool timed =
        model == WorkModel::AdcTime || model == WorkModel::EicTime;
    // EicTime: a zero-skipping engine pays avgEic of the inputBits
    // worst-case bit cycles per fragment, so the node's ADC-latency
    // share shrinks by its measured bit-density. An unmeasured node
    // (density 0, e.g. no calibration attached) charges full
    // precision — EicTime then degrades to AdcTime rather than
    // mis-ranking measured against unmeasured nodes.
    const double density =
        model == WorkModel::EicTime && n.eicDensity > 0.0f
        ? static_cast<double>(n.eicDensity) : 1.0;
    switch (n.op) {
    case Op::Conv: {
        const double rows = static_cast<double>(n.conv->kernel()) *
                            n.conv->kernel() * n.conv->inChannels();
        if (timed) {
            // Presentations (output pixels) x im2col rows: output
            // channels read in parallel across arrays, so they cost
            // crossbars, not time.
            const double pres = static_cast<double>(out_elems) /
                                n.conv->outChannels();
            return pres * rows * density;
        }
        return static_cast<double>(out_elems) * rows;
    }
    case Op::Dense:
        if (timed)
            return static_cast<double>(n.dense->inDim()) * density;
        return static_cast<double>(n.dense->inDim()) * n.dense->outDim();
    default:
        // Functional ops (relu, pool, BN, add...) are digital
        // periphery work, orders of magnitude below a crossbar MVM;
        // charge one unit per output element so empty chips still
        // lose to chips with real work in the balance objective.
        return static_cast<double>(out_elems);
    }
}

double
nodeWork(const Node &n)
{
    return nodeWork(n, WorkModel::Macs);
}

namespace {

/** float32 bytes of one node's per-sample output tensor. */
int64_t
bytesPerSample(const Node &n)
{
    int64_t elems = 1;
    for (int64_t d : n.outShape)
        elems *= d;
    return elems * static_cast<int64_t>(sizeof(float));
}

/** True for ops that program crossbars (the only replicable ones). */
bool
isMatrix(Op op)
{
    return op == Op::Conv || op == Op::Dense;
}

/**
 * Lexicographic (maxWork, cutCost) objective value. cutCost is the
 * boundary traffic with each crossing weighted by the receiving
 * chip's inverse relative link bandwidth; on a homogeneous fleet
 * every weight is 1.0, so cutCost equals the integer byte count
 * exactly (byte totals stay far below 2^53) and the tie-breaking is
 * bit-identical to the historical int64 objective.
 */
struct Cost
{
    double maxWork = std::numeric_limits<double>::infinity();
    double cutCost = 0.0;

    bool betterThan(const Cost &o) const
    {
        if (maxWork != o.maxWork)
            return maxWork < o.maxWork;
        return cutCost < o.cutCost;
    }
};

/** One DP backpointer: previous cut position and this stage's width. */
struct From
{
    int cut = -1;    //!< topo position where this stage starts
    int width = 0;   //!< chips this stage occupies
};

} // namespace

Schedule
Schedule::partition(const Graph &g, const ScheduleConfig &cfg)
{
    const std::vector<int> topo = g.topoOrder();
    const int n = static_cast<int>(topo.size());
    FORMS_ASSERT(n > 0, "partition: empty graph");
    const int requested = std::max(1, cfg.chips);

    // Topo position of each node id, and prefix sums of node work so
    // any contiguous stage's work is O(1) to evaluate.
    std::vector<int> pos(static_cast<size_t>(g.capacity()), -1);
    for (int i = 0; i < n; ++i)
        pos[static_cast<size_t>(topo[i])] = i;
    std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
        prefix[static_cast<size_t>(i) + 1] =
            prefix[static_cast<size_t>(i)] +
            nodeWork(g.node(topo[static_cast<size_t>(i)]),
                     cfg.workModel);
    }

    // Replication eligibility per topo position: a matrix node whose
    // work exceeds the threshold times the ideal per-chip share
    // (total work / requested chips) may anchor a multi-chip stage.
    // The gate is a pure function of (graph, config). mat_prefix
    // counts matrix nodes so the DP can test "range holds exactly one
    // matrix node" in O(1); last_mat[i] names the latest matrix
    // position < i.
    const int max_width =
        cfg.replicateThreshold > 0.0
            ? std::max(1, std::min(cfg.maxReplicas, requested)) : 1;
    std::vector<uint8_t> replicable(static_cast<size_t>(n), 0);
    std::vector<int> mat_prefix(static_cast<size_t>(n) + 1, 0);
    std::vector<int> last_mat(static_cast<size_t>(n) + 1, -1);
    int eligible = 0;
    if (max_width > 1) {
        const double ideal = prefix[static_cast<size_t>(n)] /
                             static_cast<double>(requested);
        for (int i = 0; i < n; ++i) {
            const Node &node = g.node(topo[static_cast<size_t>(i)]);
            const bool mat = isMatrix(node.op);
            const double w = prefix[static_cast<size_t>(i) + 1] -
                             prefix[static_cast<size_t>(i)];
            replicable[static_cast<size_t>(i)] =
                mat && w > cfg.replicateThreshold * ideal;
            eligible += replicable[static_cast<size_t>(i)];
            mat_prefix[static_cast<size_t>(i) + 1] =
                mat_prefix[static_cast<size_t>(i)] + (mat ? 1 : 0);
            last_mat[static_cast<size_t>(i) + 1] =
                mat ? i : last_mat[static_cast<size_t>(i)];
        }
    }

    // Usable chip count. Without replication every stage needs its
    // own node, so chips clamp to the live node count (the PR 3
    // invariant); a replicated stage consumes up to max_width chips
    // for one anchor node, so each eligible node can absorb
    // max_width - 1 extra chips — any count up to that bound is
    // reachable by widening anchors one chip at a time, keeping the
    // DP feasible by construction.
    const int chips = std::min(
        requested, n + eligible * (max_width - 1));

    // Resolve per-chip cost vectors: explicit cfg.chipSpecs wins,
    // then the legacy scalar capacity vector, then a homogeneous
    // fleet. The DP only sees the model-dependent *effective*
    // capacity — compute throughput for Macs, throughput x ADC rate
    // for the ADC-latency models — and the inverse link weight.
    std::vector<ChipSpec> specs = cfg.chipSpecs;
    if (specs.empty()) {
        if (!cfg.capacity.empty() &&
            static_cast<int>(cfg.capacity.size()) != cfg.chips) {
            fatal("partition: capacity vector has %zu entries for %d "
                  "chips", cfg.capacity.size(), cfg.chips);
        }
        specs.assign(static_cast<size_t>(chips), ChipSpec{});
        for (size_t s = 0;
             s < cfg.capacity.size() && s < specs.size(); ++s)
            specs[s].capacity = cfg.capacity[s];
    } else if (static_cast<int>(specs.size()) != cfg.chips) {
        fatal("partition: chipSpecs vector has %zu entries for %d "
              "chips", specs.size(), cfg.chips);
    }
    // When the chip count was clamped, the trailing specs have no
    // stage to describe.
    specs.resize(static_cast<size_t>(chips), ChipSpec{});
    const bool timed = cfg.workModel == WorkModel::AdcTime ||
                       cfg.workModel == WorkModel::EicTime;
    std::vector<double> capacity(static_cast<size_t>(chips), 1.0);
    std::vector<double> inv_link(static_cast<size_t>(chips), 1.0);
    for (int s = 0; s < chips; ++s) {
        const ChipSpec &spec = specs[static_cast<size_t>(s)];
        if (spec.capacity <= 0.0)
            fatal("partition: chip %d capacity must be positive", s);
        if (spec.adcScale <= 0.0 || spec.linkIn <= 0.0)
            fatal("partition: chip %d adcScale/linkIn must be "
                  "positive", s);
        capacity[static_cast<size_t>(s)] =
            spec.capacity * (timed ? spec.adcScale : 1.0);
        inv_link[static_cast<size_t>(s)] = 1.0 / spec.linkIn;
    }
    // Prefix sums of chip capacity so a replicated stage's pooled
    // capacity over chips [a, b) is O(1) to evaluate.
    std::vector<double> cap_prefix(static_cast<size_t>(chips) + 1, 0.0);
    for (int s = 0; s < chips; ++s) {
        cap_prefix[static_cast<size_t>(s) + 1] =
            cap_prefix[static_cast<size_t>(s)] +
            capacity[static_cast<size_t>(s)];
    }

    // last[i]: last topo position where node topo[i]'s value is
    // needed — its furthest consumer, or past the end for the graph
    // output (it leaves the last stage's scope). The DP's cut costs
    // and the materialized transfers both derive from this one
    // liveness computation, so the optimized objective always matches
    // the cost the pipeline runtime charges.
    std::vector<int> last(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
        const int id = topo[static_cast<size_t>(i)];
        int l = i;
        for (int c : g.consumers(id))
            l = std::max(l, pos[static_cast<size_t>(c)]);
        if (id == g.output())
            l = n;
        last[static_cast<size_t>(i)] = l;
    }

    // cut[b]: bytes-per-sample crossing the boundary before topo
    // position b — the sum over unique producers before b with at
    // least one consumer (or the graph output) at or after b.
    std::vector<int64_t> cut(static_cast<size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
        // The value is live across boundaries (i, last]: it must hop
        // every one of them on the linear stage-to-stage link.
        const int64_t bytes =
            bytesPerSample(g.node(topo[static_cast<size_t>(i)]));
        for (int b = i + 1;
             b <= last[static_cast<size_t>(i)] && b <= n; ++b)
            cut[static_cast<size_t>(b)] += bytes;
    }

    // Exact DP over (topo position, chips consumed): best[c][i] =
    // optimal cost of packing the first i topo nodes onto the first c
    // chips, every stage non-empty and contiguous. The closing stage
    // either takes one chip (any node range) or, when it contains
    // exactly one matrix node and that node is replication-eligible,
    // w consecutive chips whose pooled capacity divides the stage's
    // work (functional neighbors ride along with the replicated
    // matrix node — their per-slice work splits the same way).
    // Transition order — widths ascending, previous cuts ascending —
    // combined with strict betterThan makes ties resolve to the
    // narrowest replica width and then the smallest cut vector, so
    // the result is deterministic.
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<Cost>> best(
        static_cast<size_t>(chips) + 1,
        std::vector<Cost>(static_cast<size_t>(n) + 1));
    std::vector<std::vector<From>> from(
        static_cast<size_t>(chips) + 1,
        std::vector<From>(static_cast<size_t>(n) + 1));
    best[0][0] = Cost{0.0, 0.0};
    for (int c = 1; c <= chips; ++c) {
        for (int i = 1; i <= n; ++i) {
            Cost pick;
            From arg;
            // Ordinary stage on chip c-1: nodes (j, i].
            for (int j = 0; j < i; ++j) {
                const Cost &prev = best[static_cast<size_t>(c) - 1]
                                       [static_cast<size_t>(j)];
                if (prev.maxWork == inf)
                    continue;
                const double stage_work =
                    (prefix[static_cast<size_t>(i)] -
                     prefix[static_cast<size_t>(j)]) /
                    capacity[static_cast<size_t>(c) - 1];
                // The boundary's bytes land on this stage's (single)
                // chip c-1; weight them by its inbound link.
                const Cost cand{
                    std::max(prev.maxWork, stage_work),
                    prev.cutCost +
                        static_cast<double>(cut[static_cast<size_t>(j)]) *
                            inv_link[static_cast<size_t>(c) - 1]};
                if (cand.betterThan(pick)) {
                    pick = cand;
                    arg = {j, 1};
                }
            }
            // Replicated stage on chips [c-w, c): nodes (j, i], where
            // the range holds exactly one matrix node — an eligible
            // one — and the stage's work divides across the pooled
            // capacity of its w chips. Anchoring on the single matrix
            // node keeps the replication semantics simple (one set of
            // weights programmed R times) while letting the graph
            // input / relu / pool neighbors ride along instead of
            // stranding a chip on trivial work.
            const int anchor = last_mat[static_cast<size_t>(i)];
            if (anchor >= 0 && replicable[static_cast<size_t>(anchor)]) {
                for (int w = 2; w <= max_width && w <= c; ++w) {
                    const double pool_cap =
                        cap_prefix[static_cast<size_t>(c)] -
                        cap_prefix[static_cast<size_t>(c - w)];
                    for (int j = 0; j < i; ++j) {
                        // Exactly one matrix node in (j, i].
                        if (mat_prefix[static_cast<size_t>(i)] -
                                mat_prefix[static_cast<size_t>(j)] != 1)
                            continue;
                        const Cost &prev =
                            best[static_cast<size_t>(c - w)]
                                [static_cast<size_t>(j)];
                        if (prev.maxWork == inf)
                            continue;
                        const double stage_work =
                            (prefix[static_cast<size_t>(i)] -
                             prefix[static_cast<size_t>(j)]) / pool_cap;
                        // Bytes into a replicated stage land on its
                        // first chip (the stage's primary).
                        const Cost cand{
                            std::max(prev.maxWork, stage_work),
                            prev.cutCost +
                                static_cast<double>(
                                    cut[static_cast<size_t>(j)]) *
                                    inv_link[static_cast<size_t>(
                                        c - w)]};
                        if (cand.betterThan(pick)) {
                            pick = cand;
                            arg = {j, w};
                        }
                    }
                }
            }
            best[static_cast<size_t>(c)][static_cast<size_t>(i)] = pick;
            from[static_cast<size_t>(c)][static_cast<size_t>(i)] = arg;
        }
    }

    // Recover the stages back-to-front: each backpointer names the
    // stage's first topo position and its chip width.
    FORMS_ASSERT(best[static_cast<size_t>(chips)][static_cast<size_t>(n)]
                         .maxWork != inf,
                 "partition: DP failed to place every stage");
    struct StageRec
    {
        int begin = 0, end = 0, firstChip = 0, width = 0;
    };
    std::vector<StageRec> recs;
    for (int c = chips, i = n; i > 0;) {
        const From &f = from[static_cast<size_t>(c)][static_cast<size_t>(i)];
        FORMS_ASSERT(f.width > 0, "partition: broken DP backpointer");
        recs.push_back({f.cut, i, c - f.width, f.width});
        i = f.cut;
        c -= f.width;
    }
    std::reverse(recs.begin(), recs.end());

    Schedule sched;
    sched.chips_ = chips;
    sched.chipSpecs_ = specs;
    sched.stageOf_.assign(static_cast<size_t>(g.capacity()), -1);
    sched.chipNodes_.resize(static_cast<size_t>(chips));
    sched.chipWork_.assign(static_cast<size_t>(chips), 0.0);
    for (size_t s = 0; s < recs.size(); ++s) {
        const StageRec &r = recs[s];
        sched.stageFirstChip_.push_back(r.firstChip);
        sched.stageWidth_.push_back(r.width);
        std::vector<int> nodes;
        double work = 0.0;
        for (int i = r.begin; i < r.end; ++i) {
            const int id = topo[static_cast<size_t>(i)];
            sched.stageOf_[static_cast<size_t>(id)] =
                static_cast<int>(s);
            nodes.push_back(id);
            work += nodeWork(g.node(id), cfg.workModel);
        }
        const double pool_cap =
            cap_prefix[static_cast<size_t>(r.firstChip + r.width)] -
            cap_prefix[static_cast<size_t>(r.firstChip)];
        for (int chip = r.firstChip; chip < r.firstChip + r.width;
             ++chip) {
            auto &list = sched.chipNodes_[static_cast<size_t>(chip)];
            list.insert(list.end(), nodes.begin(), nodes.end());
            // A chip's share of its stage's work is its capacity
            // fraction of the stage's pooled capacity.
            sched.chipWork_[static_cast<size_t>(chip)] =
                work * capacity[static_cast<size_t>(chip)] / pool_cap;
        }
        sched.stageNodes_.push_back(std::move(nodes));
        sched.work_.push_back(work);
    }

    // Materialize the boundary hops, ordered by (fromStage, producer).
    for (size_t s = 0; s + 1 < recs.size(); ++s) {
        const int b = recs[s + 1].begin;
        for (int i = 0; i < b; ++i) {
            if (last[static_cast<size_t>(i)] >= b) {
                const int id = topo[static_cast<size_t>(i)];
                Transfer t;
                t.producer = id;
                t.fromStage = static_cast<int>(s);
                t.toStage = static_cast<int>(s) + 1;
                t.bytesPerSample = bytesPerSample(g.node(id));
                // The hop out of a replicated producer's own stage
                // rejoins the per-replica presentation slices.
                t.mergeReplicas =
                    sched.stageOf_[static_cast<size_t>(id)] ==
                        static_cast<int>(s) &&
                    recs[s].width > 1;
                sched.transfers_.push_back(t);
            }
        }
    }
    return sched;
}

int
Schedule::stageOf(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= stageOf_.size())
        return -1;
    return stageOf_[static_cast<size_t>(id)];
}

int
Schedule::chipOf(int id) const
{
    const int s = stageOf(id);
    return s < 0 ? -1 : stageFirstChip_[static_cast<size_t>(s)];
}

int
Schedule::replicasOf(int id) const
{
    const int s = stageOf(id);
    return s < 0 ? 1 : stageWidth_[static_cast<size_t>(s)];
}

int
Schedule::stageFirstChip(int s) const
{
    FORMS_ASSERT(s >= 0 && s < stages(), "stageFirstChip: bad stage");
    return stageFirstChip_[static_cast<size_t>(s)];
}

int
Schedule::stageWidth(int s) const
{
    FORMS_ASSERT(s >= 0 && s < stages(), "stageWidth: bad stage");
    return stageWidth_[static_cast<size_t>(s)];
}

double
Schedule::stageWork(int s) const
{
    FORMS_ASSERT(s >= 0 && s < stages(), "stageWork: bad stage");
    return work_[static_cast<size_t>(s)];
}

double
Schedule::chipWork(int chip) const
{
    FORMS_ASSERT(chip >= 0 && chip < chips_, "chipWork: bad chip");
    return chipWork_[static_cast<size_t>(chip)];
}

int64_t
Schedule::cutBytesPerSample() const
{
    int64_t total = 0;
    for (const Transfer &t : transfers_)
        total += t.bytesPerSample;
    return total;
}

std::string
Schedule::dump() const
{
    std::string out;
    for (int s = 0; s < stages(); ++s) {
        const int first = stageFirstChip_[static_cast<size_t>(s)];
        const int width = stageWidth_[static_cast<size_t>(s)];
        if (width == 1)
            out += strfmt("stage %d [chip %d] (work %.3g):", s, first,
                          stageWork(s));
        else
            out += strfmt("stage %d [chips %d-%d, x%d] (work %.3g):",
                          s, first, first + width - 1, width,
                          stageWork(s));
        for (int id : stageNodes_[static_cast<size_t>(s)])
            out += strfmt(" %d", id);
        out += "\n";
    }
    for (const Transfer &t : transfers_) {
        out += strfmt("transfer node %d: stage %d -> %d (%lld B/sample)%s\n",
                      t.producer, t.fromStage, t.toStage,
                      static_cast<long long>(t.bytesPerSample),
                      t.mergeReplicas ? " merge" : "");
    }
    return out;
}

} // namespace forms::compile
