#include "compile/passes.hh"

#include <cmath>

#include "nn/layers.hh"
#include "nn/network.hh"
#include "obs/trace.hh"

namespace forms::compile {

namespace {

/**
 * Lower one primitive layer reading node `cur`; returns the id of the
 * node carrying the layer's output. ResidualBlock is handled by the
 * caller (it is not a primitive).
 */
int
lowerPrimitive(Graph &g, nn::Layer &l, int cur)
{
    if (auto *conv = dynamic_cast<nn::Conv2D *>(&l)) {
        const int id = g.addNode(Op::Conv, l.name(), {cur});
        g.node(id).conv = conv;
        return id;
    }
    if (auto *dense = dynamic_cast<nn::Dense *>(&l)) {
        const int id = g.addNode(Op::Dense, l.name(), {cur});
        g.node(id).dense = dense;
        return id;
    }
    if (auto *bn = dynamic_cast<nn::BatchNorm2D *>(&l)) {
        const int id = g.addNode(Op::BatchNorm, l.name(), {cur});
        g.node(id).bn = bn;
        return id;
    }
    if (dynamic_cast<nn::ReLU *>(&l))
        return g.addNode(Op::Relu, l.name(), {cur});
    if (auto *mp = dynamic_cast<nn::MaxPool2D *>(&l)) {
        const int id = g.addNode(Op::MaxPool, l.name(), {cur});
        g.node(id).poolK = mp->kernel();
        g.node(id).poolStride = mp->stride();
        return id;
    }
    if (auto *ap = dynamic_cast<nn::AvgPool2D *>(&l)) {
        const int id = g.addNode(Op::AvgPool, l.name(), {cur});
        g.node(id).poolK = ap->kernel();
        g.node(id).poolStride = ap->stride();
        return id;
    }
    if (dynamic_cast<nn::Flatten *>(&l))
        return g.addNode(Op::Flatten, l.name(), {cur});
    fatal("compile: layer '%s' has no graph lowering", l.name().c_str());
}

int
lowerLayer(Graph &g, nn::Layer &l, int cur)
{
    auto *res = dynamic_cast<nn::ResidualBlock *>(&l);
    if (!res)
        return lowerPrimitive(g, l, cur);

    // Residual basic block: out = relu(main(x) + shortcut(x)).
    int m = cur;
    for (const auto &sub : res->mainPath())
        m = lowerLayer(g, *sub, m);
    int s = cur;
    for (const auto &sub : res->shortcutPath())
        s = lowerLayer(g, *sub, s);
    const int add = g.addNode(Op::Add, l.name() + ".add", {m, s});
    return g.addNode(Op::Relu, l.name() + ".relu_out", {add});
}

} // namespace

Graph
lowerNetwork(nn::Network &net)
{
    FORMS_TRACE_SCOPE("compile::lowerNetwork");
    Graph g;
    int cur = g.addNode(Op::Input, "input", {});
    for (size_t i = 0; i < net.size(); ++i)
        cur = lowerLayer(g, net.layer(i), cur);
    g.setOutput(cur);
    return g;
}

void
foldBatchNormInto(nn::Conv2D &conv, nn::BatchNorm2D &bn)
{
    const int out_c = conv.outChannels();
    FORMS_ASSERT(bn.channels() == out_c,
                 "fold: conv '%s' (%d ch) vs bn '%s' (%d ch)",
                 conv.name().c_str(), out_c, bn.name().c_str(),
                 bn.channels());
    Tensor &w = conv.weight();
    Tensor &b = conv.bias();
    const int64_t per_filter = w.numel() / out_c;
    for (int oc = 0; oc < out_c; ++oc) {
        const float sigma = std::sqrt(bn.runningVar().at(oc) + bn.eps());
        const float scale = bn.gamma().at(oc) / sigma;
        float *wf = w.data() + oc * per_filter;
        for (int64_t i = 0; i < per_filter; ++i)
            wf[i] *= scale;
        b.at(oc) = scale * (b.at(oc) - bn.runningMean().at(oc)) +
            bn.beta().at(oc);
        // Neutralize the live BN layer: gamma = sigma, beta = mean is
        // an exact eval-mode identity, so Network::forward(eval) stays
        // equivalent to the folded graph.
        bn.gamma().at(oc) = sigma;
        bn.beta().at(oc) = bn.runningMean().at(oc);
    }
}

namespace {

/**
 * DigitalScale fold: record gamma/sigma and the folded bias in the
 * conv node's digital output stage; weights and network untouched.
 */
void
foldIntoDigitalStage(Node &conv_node, const nn::BatchNorm2D &bn)
{
    const nn::Conv2D &conv = *conv_node.conv;
    const int out_c = conv.outChannels();
    FORMS_ASSERT(bn.channels() == out_c,
                 "fold: conv '%s' (%d ch) vs bn '%s' (%d ch)",
                 conv.name().c_str(), out_c, bn.name().c_str(),
                 bn.channels());
    conv_node.outScale.resize(static_cast<size_t>(out_c));
    conv_node.outBias.resize(static_cast<size_t>(out_c));
    for (int oc = 0; oc < out_c; ++oc) {
        const float sigma = std::sqrt(bn.runningVar().at(oc) + bn.eps());
        const float scale = bn.gamma().at(oc) / sigma;
        conv_node.outScale[static_cast<size_t>(oc)] = scale;
        conv_node.outBias[static_cast<size_t>(oc)] =
            scale * (conv.bias().at(oc) - bn.runningMean().at(oc)) +
            bn.beta().at(oc);
    }
}

} // namespace

int
foldBatchNorm(Graph &g, FoldMode mode)
{
    FORMS_TRACE_SCOPE("compile::foldBatchNorm");
    int folded = 0;
    for (int id = 0; id < g.capacity(); ++id) {
        if (!g.alive(id) || g.node(id).op != Op::BatchNorm)
            continue;
        Node &bn = g.node(id);
        const int src = bn.inputs[0];
        if (g.node(src).op != Op::Conv || g.consumers(src).size() != 1)
            continue;
        if (mode == FoldMode::Weights)
            foldBatchNormInto(*g.node(src).conv, *bn.bn);
        else
            foldIntoDigitalStage(g.node(src), *bn.bn);
        g.bypass(id);
        ++folded;
    }
    return folded;
}

} // namespace forms::compile
