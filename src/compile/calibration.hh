/**
 * @file
 * Offline activation-calibration table.
 *
 * A CalibrationTable maps each crossbar-programmed matrix node (Conv /
 * Dense, keyed by node / layer name) to the static input-quantization
 * scale of the unsigned bit-serial DAC feeding it — the fixed hardware
 * input grid FORMS assumes (ISAAC-style pipelines freeze activation
 * scales at deployment time). Tables are built offline by
 * sim::Calibrator from a calibration split, attached to a graph's
 * input edges with attachTo(), and serialized in the same
 * line-oriented hex-float format as nn/serialize model files, so a
 * model and its calibration travel together between processes.
 *
 * Thread-safety: build and load from one thread; a const table is
 * safe to share across runtimes.
 *
 * Format (line-oriented, locale-independent):
 *   forms-calibration v2
 *   input-bits <bits>
 *   scale <node-name> <observations> <range-hex> <scale-hex>
 *   eic <node-name> <fragments> <avg-eic-hex>
 *   ...
 *   end
 *
 * `eic` lines carry the node's measured bit-level activity (average
 * fragment EIC over `fragments` recorded fragments, hex-float for an
 * exact round trip) and are written only for entries that recorded
 * any; v1 files (no eic lines) still load, yielding unmeasured
 * entries.
 */

#ifndef FORMS_COMPILE_CALIBRATION_HH
#define FORMS_COMPILE_CALIBRATION_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace forms::compile {

class Graph;

/** Calibrated input grid of one matrix node. */
struct CalibEntry
{
    std::string node;          //!< matrix node / layer name
    float range = 0.0f;        //!< calibrated activation range (real units)
    float scale = 0.0f;        //!< quantizer step: range / (2^bits - 1)
    uint64_t observations = 0; //!< presentations the range was fit on

    /**
     * Measured bit-level activity: average fragment EIC over the
     * calibration split's quantized presentations (fragmented the way
     * the engine fragments its input rows). 0 with eicFragments == 0
     * means the calibrator did not measure EIC for this node (e.g. a
     * v1 table). Feeds Node::eicDensity via attachTo and the
     * WorkModel::EicTime schedule objective.
     */
    float avgEic = 0.0f;
    uint64_t eicFragments = 0; //!< fragments avgEic was measured over
};

/** Per-node static activation scales, in deterministic node order. */
class CalibrationTable
{
  public:
    CalibrationTable() = default;

    /** Input grid resolution the scales were computed for. */
    int inputBits() const { return inputBits_; }
    void setInputBits(int bits) { inputBits_ = bits; }

    /** Insert or replace the entry for `e.node`. */
    void set(CalibEntry e);

    /** Entry for a node name, or null when uncalibrated. */
    const CalibEntry *find(const std::string &node) const;

    size_t size() const { return entries_.size(); }
    const std::vector<CalibEntry> &entries() const { return entries_; }

    /**
     * Stamp every entry's scale onto the matching matrix node's
     * `Node::inScale` (its input edge) — and, for entries with a
     * measured EIC, the node's `Node::eicDensity`
     * (avgEic / inputBits) — so the graph carries its own
     * calibration; fatal()s when an entry names no live matrix node —
     * a table from a different model is a deployment error, not a
     * warning.
     */
    void attachTo(Graph &g) const;

    /** Serialize (hex floats — exact round trip). */
    void save(std::ostream &os) const;
    void save(const std::string &path) const;

    /** Parse a saved table; fatal() on format errors. */
    static CalibrationTable load(std::istream &is);
    static CalibrationTable load(const std::string &path);

  private:
    std::vector<CalibEntry> entries_;  //!< insertion order (deterministic)
    int inputBits_ = 0;
};

} // namespace forms::compile

#endif // FORMS_COMPILE_CALIBRATION_HH
