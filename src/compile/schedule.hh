/**
 * @file
 * Multi-chip partitioning pass over the layer-graph IR, with
 * optional replicated stages for throughput balancing.
 *
 * A Schedule assigns every live node of a compile::Graph to one of S
 * pipeline *stages* arranged linearly: stage 0 feeds stage 1 feeds
 * stage 2, and so on. Each stage occupies one or more of the N
 * simulated chips:
 *
 *   - an ordinary stage is a contiguous slice of the graph's
 *     deterministic topological order on a single chip (the PR 3
 *     model, where stage == chip), and
 *   - a **replicated** stage spans R consecutive chips and is
 *     anchored on exactly one matrix node (it may also carry cheap
 *     functional neighbors — graph input, relu, pooling — so trivial
 *     prefix work never strands a chip). Every replica chip programs
 *     the anchor's weights into its own arch::EnginePool and
 *     processes a deterministic, presentation-index-keyed slice of
 *     each micro-batch (replica r of R takes the contiguous
 *     presentation range [floor(P*r/R), floor(P*(r+1)/R)) — see
 *     sim/stage_kernels.hh), so an early layer that would otherwise
 *     dominate the critical path is spread R ways, ISAAC/FORMS-style.
 *
 * Stage assignments stay contiguous in topological order, so
 * inter-stage dataflow is acyclic by construction and stage k only
 * ever sends tensors forward to stage k+1. Tensor edges that cross a
 * stage boundary become explicit Transfer records (store-and-forward
 * across intermediate stages); the hop leaving a replicated
 * producer's stage is flagged `mergeReplicas` — the R presentation
 * slices rejoin into one tensor there. The pipelined executor
 * (sim/pipeline_runtime.hh) charges each hop with a configurable
 * latency/energy cost (sim::InterChipLink).
 *
 * The partitioner is an exact dynamic program over (topo cut
 * position, chips consumed). It minimizes, lexicographically:
 *
 *   1. the maximum capacity-normalized per-chip compute work — a
 *      replicated stage's work divides across the capacity of all
 *      its chips (a balanced pipeline is throughput-optimal), then
 *   2. the total tensor traffic crossing stage boundaries
 *      (min-cut-ish on the tensor edges), then
 *   3. the cut-position vector itself (smallest cut first, then the
 *      smallest replica width),
 *
 * so the result is a pure function of (graph, config) — never of
 * thread timing or iteration order. Determinism is load-bearing:
 * per-chip EngineStats presentation streams and merge order follow
 * the partition, and replica stats merge in presentation order
 * (DESIGN.md §5, docs/SCHEDULING.md).
 *
 * Thread-safety: partition() is a pure function and re-entrant. A
 * built Schedule is immutable; concurrent reads are safe. The
 * schedule borrows nothing from the graph — it holds plain ids — but
 * is only meaningful for the graph (and topology) it was built from.
 */

#ifndef FORMS_COMPILE_SCHEDULE_HH
#define FORMS_COMPILE_SCHEDULE_HH

#include "compile/graph.hh"

namespace forms::compile {

/**
 * Work model used by the balance objective. MAC count (the PR 3
 * model) measures compute *volume*, but the pipeline's critical path
 * is ADC-limited *latency*: a layer's modeled time scales with its
 * presentation count times its input rows, and early layers push 4x
 * the presentations of late ones per MAC (crossbars read all output
 * columns in parallel, so output width costs arrays, not time).
 * AdcTime balances — and gates replication on — that latency proxy,
 * which is what actually drains pipeline bubbles; Macs remains the
 * default for compatibility with the PR 3 partitions.
 *
 * AdcTime still charges every layer the full input precision, but
 * the zero-skip engine only pays each fragment's *effective input
 * cycles* (arch/zero_skip.hh): a ReLU-heavy layer whose activations
 * are mostly zero finishes its ADC phase in a fraction of the
 * worst-case cycles. EicTime scales each matrix node's AdcTime work
 * by its measured input bit-density (Node::eicDensity, stamped by
 * CalibrationTable::attachTo from a calibration run; unmeasured
 * nodes fall back to density 1, i.e. plain AdcTime) — so the balance
 * and replication decisions see the time the hardware will actually
 * spend, not the time a dense input would cost
 * (docs/SCHEDULING.md derives the model).
 */
enum class WorkModel
{
    Macs,     //!< MAC count: compute-volume balance (PR 3 behaviour)
    AdcTime,  //!< presentations x input rows: ADC-latency balance
    EicTime,  //!< AdcTime x measured input bit-density (zero-skip aware)
};

/**
 * Per-chip cost vector for heterogeneous fleets. All factors are
 * *relative* (1.0 = the reference chip); the absolute time and energy
 * scales stay in the pipeline runtime's device models.
 */
struct ChipSpec
{
    /**
     * Relative compute throughput. The balance objective divides a
     * chip's work by its capacity, so a 2.0 chip takes roughly twice
     * the nodes (all WorkModels).
     */
    double capacity = 1.0;

    /**
     * Relative ADC conversion rate. The timed models (AdcTime,
     * EicTime) measure ADC-limited latency, so their effective
     * capacity is capacity * adcScale; the Macs model measures
     * compute volume and ignores it.
     */
    double adcScale = 1.0;

    /**
     * Relative inbound link bandwidth. The DP's cut tie-breaker
     * weighs bytes crossing into this chip by 1 / linkIn, and the
     * pipeline runtime divides the modeled transfer time into this
     * chip's stage by it.
     */
    double linkIn = 1.0;
};

/** Partitioner knobs. */
struct ScheduleConfig
{
    /**
     * Pipeline chip count. Without replication it clamps to the live
     * node count (each stage needs a node of its own); with
     * replication enabled, every eligible anchor can absorb up to
     * maxReplicas - 1 extra chips beyond that.
     */
    int chips = 1;

    /**
     * Relative compute capacity per chip (empty = all equal). The
     * balance objective divides each chip's work by its capacity, so
     * a chip with capacity 2.0 is assigned roughly twice the work.
     * When non-empty it must have exactly `chips` positive entries
     * (partition() fatal()s otherwise); if the chip count is clamped
     * to a smaller live node count, trailing entries are ignored.
     */
    std::vector<double> capacity;

    /**
     * Heterogeneous per-chip cost vectors (empty = homogeneous fleet).
     * Takes precedence over the legacy `capacity` vector when both
     * are set; must have exactly `chips` entries otherwise
     * (partition() fatal()s). An all-default vector reproduces the
     * homogeneous partitions bit-for-bit (tests/test_schedule.cc pins
     * this).
     */
    std::vector<ChipSpec> chipSpecs;

    /**
     * Stage-replication gate: 0 (the default) disables replication
     * and reproduces the PR 3 contiguous stage-per-chip partition
     * exactly. When > 0, a matrix node (Conv/Dense) whose work
     * exceeds `replicateThreshold * (total work / chips)` may anchor
     * a stage replicated across up to maxReplicas consecutive chips;
     * the DP decides the actual width by the balance objective.
     * Values slightly above 1.0 replicate only nodes that provably
     * bottleneck any contiguous partition.
     */
    double replicateThreshold = 0.0;

    /**
     * Upper bound on the chips one replicated stage may occupy
     * (clamped to the chip count; values < 2 disable replication).
     */
    int maxReplicas = 4;

    /** Balance objective's work measure (see WorkModel). */
    WorkModel workModel = WorkModel::Macs;
};

/**
 * One tensor's hop across a stage boundary: node `producer`'s output
 * moving from stage `fromStage` to stage `fromStage + 1`. A value
 * consumed several stages downstream appears once per boundary it
 * crosses (store-and-forward on a linear stage-to-stage link).
 * Without replication, stage indices coincide with chip indices.
 */
struct Transfer
{
    int producer = -1;       //!< node id whose output moves
    int fromStage = -1;      //!< sending stage (receiver is fromStage+1)
    int toStage = -1;        //!< receiving stage (always fromStage + 1)
    int64_t bytesPerSample = 0;  //!< float32 payload per batch sample

    /**
     * True on the hop leaving a replicated producer's own stage: the
     * R per-replica presentation slices rejoin into one tensor at
     * this boundary (the merge is free in the model — slices are
     * disjoint rows of the same buffer — but the record makes the
     * rejoin explicit for the timing model and for dumps).
     */
    bool mergeReplicas = false;
};

/**
 * A stage assignment for every live node of one graph, plus the
 * induced inter-stage transfers. Build with partition(); the graph
 * must have run inferShapes() first (edge traffic is measured in
 * output-tensor bytes).
 */
class Schedule
{
  public:
    /**
     * Partition `g` into pipeline stages over cfg.chips chips (see
     * file header for the objective). Requires inferShapes() to have
     * run; fatal()s on empty shapes or a malformed capacity vector.
     */
    static Schedule partition(const Graph &g, const ScheduleConfig &cfg);

    /** Number of chips actually used (<= cfg.chips). */
    int chips() const { return chips_; }

    /** Number of pipeline stages (== chips() when nothing replicates). */
    int stages() const { return static_cast<int>(stageNodes_.size()); }

    /** Stage owning live node `id` (-1 for dead/unknown ids). */
    int stageOf(int id) const;

    /**
     * Primary chip of live node `id` (-1 for dead/unknown ids): the
     * first chip of its stage. A replicated node also runs on the
     * width-1 chips after it; see replicasOf()/stageFirstChip().
     */
    int chipOf(int id) const;

    /** Replica count of node `id`'s stage (1 when not replicated). */
    int replicasOf(int id) const;

    /** Node ids per stage, each list in topological order. */
    const std::vector<std::vector<int>> &stageNodes() const
    {
        return stageNodes_;
    }

    /** First chip index of stage `s` (stages occupy consecutive chips). */
    int stageFirstChip(int s) const;

    /** Chips occupied by stage `s` (1 for ordinary stages). */
    int stageWidth(int s) const;

    /**
     * Node ids per chip, each list in topological order. A replicated
     * node appears in the list of every chip of its stage (each chip
     * programs its own replica engine).
     */
    const std::vector<std::vector<int>> &chipNodes() const
    {
        return chipNodes_;
    }

    /** All boundary hops, ordered by (fromStage, producer id). */
    const std::vector<Transfer> &transfers() const { return transfers_; }

    /**
     * Modeled compute work of one stage, in the configured
     * WorkModel's units.
     */
    double stageWork(int s) const;

    /**
     * Modeled compute work of one chip: its capacity share of its
     * stage's work (a replicated stage divides across its chips).
     */
    double chipWork(int chip) const;

    /** Total bytes-per-sample crossing all stage boundaries. */
    int64_t cutBytesPerSample() const;

    /** True when any stage is replicated (width > 1). */
    bool replicated() const { return stages() < chips_; }

    /**
     * Resolved per-chip cost vectors, one per used chip: the
     * validated cfg.chipSpecs, or specs synthesized from the legacy
     * capacity vector (defaults elsewhere). The pipeline runtime
     * scales its per-chip timing by these.
     */
    const std::vector<ChipSpec> &chipSpecs() const { return chipSpecs_; }

    /** Multi-line human-readable dump (one stage per line). */
    std::string dump() const;

  private:
    int chips_ = 0;
    std::vector<int> stageOf_;              //!< by node id; -1 = dead
    std::vector<std::vector<int>> stageNodes_;
    std::vector<int> stageFirstChip_;
    std::vector<int> stageWidth_;
    std::vector<std::vector<int>> chipNodes_;
    std::vector<Transfer> transfers_;
    std::vector<double> work_;              //!< per stage
    std::vector<double> chipWork_;          //!< per chip
    std::vector<ChipSpec> chipSpecs_;       //!< per chip, resolved
};

/**
 * Compute-work estimate of one node under `model` (per sample):
 * Macs counts multiply-accumulates for Conv/Dense, AdcTime counts
 * presentations x input rows (the ADC-limited latency proxy), and
 * EicTime scales AdcTime by the node's measured input bit-density
 * (Node::eicDensity; 1 when unmeasured); all charge cheap functional
 * ops one unit per output element. Requires outShape to be inferred.
 * The one-argument form is the Macs model.
 */
double nodeWork(const Node &n, WorkModel model);
double nodeWork(const Node &n);

} // namespace forms::compile

#endif // FORMS_COMPILE_SCHEDULE_HH
