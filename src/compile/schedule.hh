/**
 * @file
 * Multi-chip partitioning pass over the layer-graph IR.
 *
 * A Schedule assigns every live node of a compile::Graph to one of N
 * simulated chips arranged as a linear pipeline: chip 0 feeds chip 1
 * feeds chip 2, and so on. Assignments are contiguous in the graph's
 * deterministic topological order, so inter-chip dataflow is acyclic
 * by construction and chip k only ever sends tensors forward to chip
 * k+1. Tensor edges that cross a chip boundary become explicit
 * Transfer records (store-and-forward across intermediate chips),
 * which the pipelined executor (sim/pipeline_runtime.hh) charges with
 * a configurable latency/energy cost (sim::InterChipLink).
 *
 * The partitioner is an exact dynamic program over cut positions in
 * the topological order. It minimizes, lexicographically:
 *
 *   1. the maximum capacity-normalized per-chip compute work
 *      (a balanced pipeline is throughput-optimal), then
 *   2. the total tensor traffic crossing chip boundaries
 *      (min-cut-ish on the tensor edges), then
 *   3. the cut-position vector itself (smallest-first),
 *
 * so the result is a pure function of (graph, config) — never of
 * thread timing or iteration order. Determinism is load-bearing:
 * per-chip EngineStats presentation streams and merge order follow
 * the partition (DESIGN.md §5).
 *
 * Thread-safety: partition() is a pure function and re-entrant. A
 * built Schedule is immutable; concurrent reads are safe.
 */

#ifndef FORMS_COMPILE_SCHEDULE_HH
#define FORMS_COMPILE_SCHEDULE_HH

#include "compile/graph.hh"

namespace forms::compile {

/** Partitioner knobs. */
struct ScheduleConfig
{
    /** Pipeline chip count; clamped to the live node count. */
    int chips = 1;

    /**
     * Relative compute capacity per chip (empty = all equal). The
     * balance objective divides each chip's work by its capacity, so
     * a chip with capacity 2.0 is assigned roughly twice the work.
     * When non-empty it must have exactly `chips` positive entries
     * (partition() fatal()s otherwise); if the chip count is clamped
     * to a smaller live node count, trailing entries are ignored.
     */
    std::vector<double> capacity;
};

/**
 * One tensor's hop across a chip boundary: node `producer`'s output
 * moving from chip `fromChip` to chip `fromChip + 1`. A value
 * consumed several chips downstream appears once per boundary it
 * crosses (store-and-forward on a linear chip-to-chip link).
 */
struct Transfer
{
    int producer = -1;       //!< node id whose output moves
    int fromChip = -1;       //!< sending chip (receiver is fromChip+1)
    int toChip = -1;         //!< receiving chip (always fromChip + 1)
    int64_t bytesPerSample = 0;  //!< float32 payload per batch sample
};

/**
 * A chip assignment for every live node of one graph, plus the
 * induced inter-chip transfers. Build with partition(); the graph
 * must have run inferShapes() first (edge traffic is measured in
 * output-tensor bytes). The schedule borrows nothing from the graph —
 * it holds plain ids — but is only meaningful for the graph (and the
 * topology) it was built from.
 */
class Schedule
{
  public:
    /**
     * Partition `g` into cfg.chips pipeline stages (see file header
     * for the objective). Requires inferShapes() to have run;
     * fatal()s on empty shapes or a malformed capacity vector.
     */
    static Schedule partition(const Graph &g, const ScheduleConfig &cfg);

    /** Number of chips actually used (<= cfg.chips). */
    int chips() const { return chips_; }

    /** Chip owning live node `id` (-1 for dead/unknown ids). */
    int chipOf(int id) const;

    /** Node ids per chip, each list in topological order. */
    const std::vector<std::vector<int>> &chipNodes() const
    {
        return chipNodes_;
    }

    /** All boundary hops, ordered by (fromChip, producer id). */
    const std::vector<Transfer> &transfers() const { return transfers_; }

    /** Modeled compute work (MAC-count estimate) of one chip. */
    double chipWork(int chip) const;

    /** Total bytes-per-sample crossing all chip boundaries. */
    int64_t cutBytesPerSample() const;

    /** Multi-line human-readable dump (one chip per line). */
    std::string dump() const;

  private:
    int chips_ = 0;
    std::vector<int> chipOf_;               //!< by node id; -1 = dead
    std::vector<std::vector<int>> chipNodes_;
    std::vector<Transfer> transfers_;
    std::vector<double> work_;              //!< per chip
};

/**
 * Compute-work estimate of one node used by the balance objective:
 * MAC count for Conv/Dense (per sample), output element count for
 * the cheap functional ops. Requires outShape to be inferred.
 */
double nodeWork(const Node &n);

} // namespace forms::compile

#endif // FORMS_COMPILE_SCHEDULE_HH
