#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace forms {

namespace {

/** -1 = not yet resolved from the environment. */
std::atomic<int> g_logLevel{-1};

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("FORMS_LOG");
    if (!env || !*env)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    // Can't use warn() here (it consults the level being resolved);
    // print the complaint directly, unconditionally.
    std::fprintf(stderr,
                 "warn: FORMS_LOG='%s' not one of debug|info|warn — "
                 "using info\n",
                 env);
    return LogLevel::Info;
}

/** Serializes emission so parallel workers' messages never interleave. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    // Format outside the lock; emit and flush atomically per message.
    std::string msg = vstrfmt(fmt, ap);
    std::lock_guard<std::mutex> lk(logMutex());
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace

LogLevel
logLevel()
{
    int lvl = g_logLevel.load(std::memory_order_relaxed);
    if (lvl < 0) {
        lvl = static_cast<int>(levelFromEnv());
        // A concurrent first caller resolves the same env value, so
        // losing this race is harmless.
        g_logLevel.store(lvl, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(lvl);
}

void
setLogLevel(LogLevel level)
{
    g_logLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
panicAt(const char *expr, const char *file, int line, const char *fmt,
        ...)
{
    // Format the caller's message first, with its own arguments: the
    // old approach of concatenating the caller's format string onto a
    // prefix put the prefix arguments and the message arguments in the
    // wrong vararg order, so any assertion *with* format arguments
    // crashed inside vsnprintf instead of printing.
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    panic("assertion '%s' failed at %s:%d — %s", expr, file, line,
          msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace forms
