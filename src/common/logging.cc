#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace forms {

namespace {

/** Serializes emission so parallel workers' messages never interleave. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    // Format outside the lock; emit and flush atomically per message.
    std::string msg = vstrfmt(fmt, ap);
    std::lock_guard<std::mutex> lk(logMutex());
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
panicAt(const char *expr, const char *file, int line, const char *fmt,
        ...)
{
    // Format the caller's message first, with its own arguments: the
    // old approach of concatenating the caller's format string onto a
    // prefix put the prefix arguments and the message arguments in the
    // wrong vararg order, so any assertion *with* format arguments
    // crashed inside vsnprintf instead of printing.
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    panic("assertion '%s' failed at %s:%d — %s", expr, file, line,
          msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace forms
