#include "common/threadpool.hh"

#include <algorithm>
#include <cstdlib>

namespace forms {

namespace {

/** Which pool/shard the current thread is executing inside, if any. */
struct ActiveShard
{
    const ThreadPool *pool = nullptr;
    int shard = 0;
};

thread_local ActiveShard tl_active;

/** Innermost PoolScope override for this thread (null = global). */
thread_local ThreadPool *tl_current_pool = nullptr;

} // namespace

PoolScope::PoolScope(ThreadPool &pool) : previous_(tl_current_pool)
{
    tl_current_pool = &pool;
}

PoolScope::~PoolScope()
{
    tl_current_pool = previous_;
}

ThreadPool &
ThreadPool::current()
{
    return tl_current_pool ? *tl_current_pool : global();
}

ThreadPool::ThreadPool(int threads)
{
    nThreads_ = threads > 0 ? threads : defaultThreads();
    workers_.reserve(static_cast<size_t>(nThreads_ - 1));
    for (int s = 1; s < nThreads_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("FORMS_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::runShard(const Job &job, int shard)
{
    // Static chunk ownership: chunk c belongs to shard c % nThreads_,
    // processed in increasing order — deterministic by construction.
    const int64_t chunks =
        (job.end - job.begin + job.grain - 1) / job.grain;
    for (int64_t c = shard; c < chunks; c += nThreads_) {
        const int64_t lo = job.begin + c * job.grain;
        const int64_t hi = std::min(job.end, lo + job.grain);
        for (int64_t i = lo; i < hi; ++i)
            (*job.fn)(i, shard);
    }
}

void
ThreadPool::recordError()
{
    std::lock_guard<std::mutex> lk(m_);
    if (!firstError_)
        firstError_ = std::current_exception();
}

void
ThreadPool::workerLoop(int shard)
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const Job job = job_;
        lk.unlock();

        tl_active = {this, shard};
        try {
            runShard(job, shard);
        } catch (...) {
            recordError();
        }
        tl_active = {};

        lk.lock();
        if (--pending_ == 0)
            doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int)> &fn)
{
    if (begin >= end)
        return;
    grain = std::max<int64_t>(1, grain);

    // Nested call from inside one of our own shards: run inline on
    // the caller's shard — reusing the workers would deadlock the
    // fork-join barrier, and the caller's shard id keeps per-thread
    // accumulator indexing valid. A call into a *different* pool
    // falls through to normal dispatch: that pool's workers are free
    // and hand out their own unique shard ids. (Cyclic cross-pool
    // nesting — A's workers entering B while B's workers enter A —
    // is not supported.)
    if (tl_active.pool == this) {
        const int shard = tl_active.shard;
        for (int64_t i = begin; i < end; ++i)
            fn(i, shard);
        return;
    }

    const int64_t chunks = (end - begin + grain - 1) / grain;
    if (nThreads_ == 1 || chunks == 1) {
        // Single shard: no handoff, run on the caller as shard 0.
        // Restore the caller's own shard state afterwards — it may be
        // a worker of another pool.
        const ActiveShard prev = tl_active;
        tl_active = {this, 0};
        try {
            for (int64_t i = begin; i < end; ++i)
                fn(i, 0);
        } catch (...) {
            tl_active = prev;
            throw;
        }
        tl_active = prev;
        return;
    }

    // Outside callers racing on the same pool queue up here instead of
    // corrupting the fork-join state.
    std::lock_guard<std::mutex> dispatch(dispatchM_);

    Job job{begin, end, grain, &fn};
    {
        std::lock_guard<std::mutex> lk(m_);
        job_ = job;
        firstError_ = nullptr;
        pending_ = nThreads_ - 1;
        ++generation_;
    }
    cv_.notify_all();

    // The calling thread is shard 0 (of this pool — it may be a
    // worker of another pool, so restore its state afterwards).
    const ActiveShard prev = tl_active;
    tl_active = {this, 0};
    try {
        runShard(job, 0);
    } catch (...) {
        recordError();
    }
    tl_active = prev;

    std::unique_lock<std::mutex> lk(m_);
    doneCv_.wait(lk, [&] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace forms
