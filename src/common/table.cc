#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace forms {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    FORMS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    flushCurrent();
    FORMS_ASSERT(cells.size() == headers_.size(),
                 "row width %zu != header width %zu",
                 cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

Table &
Table::row()
{
    flushCurrent();
    building_ = true;
    current_.clear();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    FORMS_ASSERT(building_, "cell() outside of row()");
    current_.push_back(s);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    return cell(strfmt("%.*f", precision, v));
}

Table &
Table::cell(int64_t v)
{
    return cell(strfmt("%lld", static_cast<long long>(v)));
}

void
Table::flushCurrent()
{
    if (building_) {
        building_ = false;
        std::vector<std::string> done = std::move(current_);
        current_.clear();
        addRow(std::move(done));
    }
}

std::string
Table::str() const
{
    // A const copy path: flush is only needed when a row is in flight,
    // which callers finish by calling str()/print() after the last cell.
    std::vector<std::vector<std::string>> rows = rows_;
    if (building_)
        rows.push_back(current_);

    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &r : rows)
        for (size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &s = c < r.size() ? r[c] : std::string();
            os << "| " << s;
            os << std::string(width[c] - s.size() + 1, ' ');
        }
        os << "|\n";
    };
    auto emit_rule = [&]() {
        for (size_t c = 0; c < headers_.size(); ++c)
            os << "|" << std::string(width[c] + 2, '-');
        os << "|\n";
    };

    emit_row(headers_);
    emit_rule();
    for (const auto &r : rows)
        emit_row(r);
    return os.str();
}

void
Table::print(const std::string &title) const
{
    if (!title.empty())
        std::printf("\n== %s ==\n", title.c_str());
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace forms
