/**
 * @file
 * Console table printer used by the benchmark harnesses to regenerate
 * the paper's tables and figure series as aligned text output.
 */

#ifndef FORMS_COMMON_TABLE_HH
#define FORMS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace forms {

/** A simple aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formed row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    Table &row();

    /** Append a string cell to the row under construction. */
    Table &cell(const std::string &s);

    /** Append a numeric cell with the given decimal precision. */
    Table &cell(double v, int precision = 2);

    /** Append an integer cell. */
    Table &cell(int64_t v);

    /** Render the table to a string. */
    std::string str() const;

    /** Print the table to stdout, optionally preceded by a title. */
    void print(const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> current_;
    bool building_ = false;

    void flushCurrent();
};

} // namespace forms

#endif // FORMS_COMMON_TABLE_HH
