#include "common/simd.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

#if defined(__aarch64__) && !defined(FORMS_SIMD_OFF)
#include <arm_neon.h>
#define FORMS_SIMD_HAVE_NEON 1
#endif

namespace forms::simd {

namespace detail {
// Defined in simd_avx2.cc (compiled with -mavx2 when FORMS_SIMD=ON on
// x86-64); returns null when the variant is not compiled in.
const Kernels *avx2Table();
} // namespace detail

namespace {

// ---- scalar reference (always available) -----------------------------
//
// These loops are the bitwise definition of each kernel; the vector
// variants must reproduce them exactly (see the header contract).

void
addF64Scalar(double *acc, const double *x, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        acc[i] += x[i];
}

void
axpyF32Scalar(float *y, const float *x, float a, int64_t n)
{
    // Two rounded operations per element; the library is compiled with
    // -ffp-contract=off so no target can fuse them into an FMA.
    for (int64_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

double
dotF32Scalar(const float *a, const float *b, int64_t n)
{
    // The canonical kDotLanes-block reduction tree (DESIGN.md §6).
    // Each product of two floats is exact in double, so only the
    // addition order matters — and it is fixed here.
    double lane[kDotLanes] = {0.0, 0.0, 0.0, 0.0};
    for (int64_t i = 0; i < n; ++i) {
        lane[i & 3] +=
            static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void
copyF32Scalar(float *dst, const float *src, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

constexpr Kernels kScalarTable = {Mode::Scalar, "scalar", addF64Scalar,
                                  axpyF32Scalar, dotF32Scalar,
                                  copyF32Scalar};

// ---- NEON (aarch64 baseline) -----------------------------------------

#if defined(FORMS_SIMD_HAVE_NEON)

void
addF64Neon(double *acc, const double *x, int64_t n)
{
    int64_t i = 0;
    for (; i + 2 <= n; i += 2) {
        vst1q_f64(acc + i,
                  vaddq_f64(vld1q_f64(acc + i), vld1q_f64(x + i)));
    }
    for (; i < n; ++i)
        acc[i] += x[i];
}

void
axpyF32Neon(float *y, const float *x, float a, int64_t n)
{
    // vmulq + vaddq, never vmlaq/vfmaq: FMLA fuses the rounding and
    // would diverge from the scalar reference.
    const float32x4_t va = vdupq_n_f32(a);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

double
dotF32Neon(const float *a, const float *b, int64_t n)
{
    // NEON doubles are 2-wide, so the canonical 4-lane tree is
    // emulated with two accumulators: accA holds lanes {0, 1}, accB
    // lanes {2, 3}.
    float64x2_t acc_a = vdupq_n_f64(0.0);
    float64x2_t acc_b = vdupq_n_f64(0.0);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t fa = vld1q_f32(a + i);
        const float32x4_t fb = vld1q_f32(b + i);
        acc_a = vaddq_f64(acc_a,
                          vmulq_f64(vcvt_f64_f32(vget_low_f32(fa)),
                                    vcvt_f64_f32(vget_low_f32(fb))));
        acc_b = vaddq_f64(acc_b,
                          vmulq_f64(vcvt_f64_f32(vget_high_f32(fa)),
                                    vcvt_f64_f32(vget_high_f32(fb))));
    }
    double lane[kDotLanes];
    vst1q_f64(lane, acc_a);
    vst1q_f64(lane + 2, acc_b);
    for (; i < n; ++i) {
        lane[i & 3] +=
            static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void
copyF32Neon(float *dst, const float *src, int64_t n)
{
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

constexpr Kernels kNeonTable = {Mode::Neon, "neon", addF64Neon,
                                axpyF32Neon, dotF32Neon, copyF32Neon};

#endif // FORMS_SIMD_HAVE_NEON

const Kernels *
neonTable()
{
#if defined(FORMS_SIMD_HAVE_NEON)
    return &kNeonTable;
#else
    return nullptr;
#endif
}

/** How Mode::Auto was decided, for buildDescription(). */
enum class AutoSource { Detected, Env, Override };

std::atomic<Mode> g_auto{Mode::Auto};   //!< Auto = not yet resolved
std::atomic<AutoSource> g_source{AutoSource::Detected};

Mode
bestAvailable()
{
    if (avx2Supported())
        return Mode::Avx2;
    if (neonSupported())
        return Mode::Neon;
    return Mode::Scalar;
}

/** Explicit-mode resolution with a one-time fallback warning. */
Mode
resolveExplicit(Mode m)
{
    if (m == Mode::Avx2 && !avx2Supported()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("simd: avx2 requested but unavailable on this "
                 "build/CPU — falling back to scalar kernels");
        return Mode::Scalar;
    }
    if (m == Mode::Neon && !neonSupported()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("simd: neon requested but unavailable on this "
                 "build/CPU — falling back to scalar kernels");
        return Mode::Scalar;
    }
    return m;
}

Mode
resolveFromEnv()
{
    const char *env = std::getenv("FORMS_SIMD");
    if (env && *env) {
        Mode m = Mode::Auto;
        if (parseMode(env, &m)) {
            if (m != Mode::Auto) {
                g_source.store(AutoSource::Env);
                return resolveExplicit(m);
            }
        } else {
            // Warn once: setProcessMode(Auto) re-runs this resolution.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                warn("simd: unknown FORMS_SIMD value '%s' "
                     "(want scalar|avx2|neon|auto) — using auto "
                     "detection",
                     env);
            }
        }
    }
    g_source.store(AutoSource::Detected);
    return bestAvailable();
}

} // namespace

bool
avx2Supported()
{
    return detail::avx2Table() != nullptr;
}

bool
neonSupported()
{
    return neonTable() != nullptr;
}

Mode
processMode()
{
    Mode m = g_auto.load(std::memory_order_relaxed);
    if (m == Mode::Auto) {
        m = resolveFromEnv();
        g_auto.store(m, std::memory_order_relaxed);
    }
    return m;
}

void
setProcessMode(Mode mode)
{
    if (mode == Mode::Auto) {
        g_auto.store(Mode::Auto, std::memory_order_relaxed);  // re-resolve
        return;
    }
    g_source.store(AutoSource::Override);
    g_auto.store(resolveExplicit(mode), std::memory_order_relaxed);
}

Mode
resolve(Mode requested)
{
    if (requested == Mode::Auto)
        return processMode();
    return resolveExplicit(requested);
}

const Kernels &
kernels(Mode requested)
{
    switch (resolve(requested)) {
    case Mode::Avx2:
        return *detail::avx2Table();
    case Mode::Neon: {
        const Kernels *t = neonTable();
        if (t)
            return *t;
        break;
    }
    default:
        break;
    }
    return kScalarTable;
}

const char *
modeName(Mode mode)
{
    switch (mode) {
    case Mode::Auto:
        return "auto";
    case Mode::Scalar:
        return "scalar";
    case Mode::Avx2:
        return "avx2";
    case Mode::Neon:
        return "neon";
    }
    return "?";
}

bool
parseMode(const std::string &text, Mode *out)
{
    std::string t;
    t.reserve(text.size());
    for (char c : text)
        t.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (t == "auto")
        *out = Mode::Auto;
    else if (t == "scalar" || t == "off" || t == "none")
        *out = Mode::Scalar;
    else if (t == "avx2")
        *out = Mode::Avx2;
    else if (t == "neon")
        *out = Mode::Neon;
    else
        return false;
    return true;
}

namespace {

const char *
buildTypeName()
{
#if defined(FORMS_BUILD_TYPE)
    return FORMS_BUILD_TYPE;
#else
    return "unknown";
#endif
}

bool
optimizedBuild()
{
    const char *t = buildTypeName();
    return std::strcmp(t, "Release") == 0 ||
        std::strcmp(t, "RelWithDebInfo") == 0;
}

} // namespace

std::string
buildDescription()
{
    const Mode m = processMode();
    const char *how = "detected";
    switch (g_source.load()) {
    case AutoSource::Env:
        how = "env FORMS_SIMD";
        break;
    case AutoSource::Override:
        how = "override";
        break;
    case AutoSource::Detected:
        break;
    }
    return strfmt("dispatch=%s (%s), build=%s", modeName(m), how,
                  buildTypeName());
}

void
printBenchBanner(const char *tool)
{
    // Through the leveled logger: FORMS_LOG=warn silences the banner
    // for scripted runs, while the unoptimized-build warning stays
    // loud at every level short of silence.
    inform("%s: %s", tool, buildDescription().c_str());
    if (!optimizedBuild()) {
        warn("%s: unoptimized build type '%s' — the numbers below are "
             "NOT meaningful performance data; rebuild with "
             "CMAKE_BUILD_TYPE=Release",
             tool, buildTypeName());
    }
}

} // namespace forms::simd
