/**
 * @file
 * Lightweight statistics collectors used throughout the simulator:
 * running scalar statistics (mean/variance/min/max) and integer
 * histograms (used e.g. for the effective-input-cycle distributions
 * of Figure 8).
 */

#ifndef FORMS_COMMON_STATS_HH
#define FORMS_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace forms {

/** Online mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Number of samples seen. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Maximum sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-range integer histogram over bins [0, nbins). Out-of-range
 * samples are clamped into the edge bins so no sample is lost.
 */
class Histogram
{
  public:
    explicit Histogram(int nbins);

    /** Record one integer sample. */
    void add(int value);

    /** Record `weight` occurrences of `value`. */
    void add(int value, uint64_t weight);

    /** Count in one bin. */
    uint64_t bin(int b) const;

    /** Number of bins. */
    int numBins() const { return static_cast<int>(bins_.size()); }

    /** Total samples recorded. */
    uint64_t total() const { return total_; }

    /** Fraction of samples in bin b (0 when empty). */
    double fraction(int b) const;

    /** Mean of recorded values. */
    double mean() const;

    /**
     * Smallest value v such that at least `q` fraction of the samples
     * are <= v. q must be in (0, 1].
     */
    int percentile(double q) const;

  private:
    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
};

} // namespace forms

#endif // FORMS_COMMON_STATS_HH
