/**
 * @file
 * Deterministic random number generation for all FORMS components.
 *
 * Every stochastic piece of the library (weight init, synthetic datasets,
 * device variation, activation sampling) takes an explicit Rng so that
 * experiments are reproducible run-to-run and platform-independent.
 * The generator is xoshiro256** seeded through splitmix64.
 */

#ifndef FORMS_COMMON_RNG_HH
#define FORMS_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace forms {

/** xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-seed the generator (state expanded via splitmix64). */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        haveSpare_ = false;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant at 64-bit state for simulation purposes).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Standard normal via Marsaglia polar method (cached spare). */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        haveSpare_ = true;
        return u * m;
    }

    /** Normal with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /**
     * Log-normal sample: exp(N(mu, sigma)). With mu = 0 this is the
     * multiplicative device-variation model used in the paper (§V-E).
     */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace forms

#endif // FORMS_COMMON_RNG_HH
