/**
 * @file
 * Runtime-dispatched SIMD kernels for the simulator's hot paths.
 *
 * Every kernel exists in a scalar variant (the bitwise reference) and
 * optional AVX2 / NEON variants selected at runtime from one dispatch
 * table. The contract that makes dispatch safe under the DESIGN.md
 * determinism rules: **every variant of a kernel produces bit-identical
 * results**, enforced structurally by two rules (DESIGN.md §6):
 *
 * 1. Elementwise kernels (addF64, axpyF32, copyF32) only combine each
 *    output element with its own operands — vector width cannot change
 *    any per-element operation order, so any correct vectorization is
 *    bitwise equal to the scalar loop. Multiply-add stays two rounded
 *    operations (no FMA contraction) in every variant.
 * 2. Reduction kernels (dotF32) use a fixed lane-block order that is
 *    part of the kernel's *definition*, not an implementation detail:
 *    kDotLanes = 4 partial accumulators with element i feeding lane
 *    (i % 4) in ascending i, combined as (l0+l2) + (l1+l3). The scalar
 *    reference implements the same tree, so ISAs with narrower or wider
 *    native vectors must emulate the 4-lane shape rather than use their
 *    natural width.
 *
 * Mode resolution: Mode::Auto picks the best variant compiled in AND
 * supported by the running CPU; the FORMS_SIMD environment variable
 * (scalar | avx2 | neon | auto) overrides it process-wide, and
 * arch::EngineConfig / setProcessMode() override it per-engine / for
 * tests. Building with -DFORMS_SIMD=OFF compiles the scalar table only.
 */

#ifndef FORMS_COMMON_SIMD_HH
#define FORMS_COMMON_SIMD_HH

#include <cstdint>
#include <string>

namespace forms::simd {

/** Which kernel variant set to run. */
enum class Mode
{
    Auto,    //!< env FORMS_SIMD if set, else best available
    Scalar,  //!< portable reference (always available)
    Avx2,    //!< x86-64 AVX2
    Neon,    //!< aarch64 NEON
};

/** Number of partial accumulators in the canonical reduction tree. */
constexpr int kDotLanes = 4;

/**
 * One variant set of the hot-path kernels. All function pointers are
 * non-null; every variant is bit-identical to the scalar table (the
 * header comment's rules 1–2).
 */
struct Kernels
{
    Mode mode;
    const char *name;

    /** acc[i] += x[i] for i in [0, n). */
    void (*addF64)(double *acc, const double *x, int64_t n);

    /** y[i] += a * x[i] (two roundings, never FMA) for i in [0, n). */
    void (*axpyF32)(float *y, const float *x, float a, int64_t n);

    /**
     * Lane-blocked dot product in double:
     * lane[j] = sum of (double)a[i] * (double)b[i] over i ≡ j (mod 4),
     * returned as (lane0 + lane2) + (lane1 + lane3).
     */
    double (*dotF32)(const float *a, const float *b, int64_t n);

    /** dst[i] = src[i] (pure data movement). */
    void (*copyF32)(float *dst, const float *src, int64_t n);
};

/** True when the AVX2 table is compiled in and the CPU supports it. */
bool avx2Supported();

/** True when the NEON table is compiled in (aarch64 baseline). */
bool neonSupported();

/**
 * Resolve a requested mode to a runnable one: Auto follows the
 * process-wide mode (setProcessMode / FORMS_SIMD env / best available);
 * an explicit mode that is not supported on this build+CPU falls back
 * to Scalar with a one-time warning.
 */
Mode resolve(Mode requested);

/** Kernel table for a mode (resolved first). Never null. */
const Kernels &kernels(Mode requested = Mode::Auto);

/**
 * Override what Mode::Auto resolves to, process-wide (testing hook;
 * takes precedence over the FORMS_SIMD environment variable).
 * Pass Mode::Auto to restore env/default resolution.
 */
void setProcessMode(Mode mode);

/** Current process-wide resolution of Mode::Auto. */
Mode processMode();

/** Lower-case mode name ("auto", "scalar", "avx2", "neon"). */
const char *modeName(Mode mode);

/**
 * Parse a mode name (case-insensitive). Returns false (and leaves
 * `out` untouched) on an unknown name.
 */
bool parseMode(const std::string &text, Mode *out);

/**
 * One-line description of the active configuration, e.g.
 * "dispatch=avx2 (auto), build=Release". Benches print it so a number
 * can never be read without knowing which path and build produced it.
 */
std::string buildDescription();

/**
 * Print `tool: <buildDescription()>` and, when the build type is not
 * Release/RelWithDebInfo, a loud warning that the numbers from this
 * binary are not meaningful performance data.
 */
void printBenchBanner(const char *tool);

} // namespace forms::simd

#endif // FORMS_COMMON_SIMD_HH
