/**
 * @file
 * Deterministic fork-join thread pool used by the batched inference
 * runtime and the tensor kernels.
 *
 * Design goals, in order: reproducibility, simplicity, throughput.
 * parallelFor() splits [begin, end) into fixed chunks of `grain`
 * indices and assigns chunk c statically to shard (c % threads) — no
 * work stealing, so the (index -> worker) mapping is a pure function
 * of (range, grain, thread count) and per-worker accumulators are
 * reproducible run-to-run. The calling thread participates as shard 0;
 * a pool of T threads spawns T-1 workers. A nested parallelFor on the
 * *same* pool executes inline on the calling worker's shard (no
 * deadlock, accumulator indexing stays valid); a call into a
 * different pool dispatches normally to that pool's idle workers.
 * Cyclic cross-pool nesting is not supported.
 *
 * Exceptions thrown by the body are caught, the first one recorded,
 * and rethrown on the calling thread after the join.
 */

#ifndef FORMS_COMMON_THREADPOOL_HH
#define FORMS_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace forms {

/** Fixed-size fork-join pool with static, deterministic sharding. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of shards (calling thread included). */
    int threads() const { return nThreads_; }

    /**
     * Run fn(i, worker) for every i in [begin, end), in chunks of
     * `grain` (clamped to >= 1). `worker` is the shard index in
     * [0, threads()) executing the call — use it to index per-thread
     * accumulators. Within one shard, indices run in increasing
     * order. Blocks until the whole range is done; rethrows the first
     * exception the body threw.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int)> &fn);

    /** Process-wide shared pool (FORMS_THREADS or hardware size). */
    static ThreadPool &global();

    /**
     * Pool the free parallelFor() below dispatches to on this thread:
     * the innermost active PoolScope's pool, else global().
     */
    static ThreadPool &current();

    /** FORMS_THREADS env var if set, else hardware concurrency. */
    static int defaultThreads();

  private:
    struct Job
    {
        int64_t begin = 0, end = 0, grain = 1;
        const std::function<void(int64_t, int)> *fn = nullptr;
    };

    void workerLoop(int shard);
    void runShard(const Job &job, int shard);
    void recordError();

    int nThreads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex dispatchM_;            //!< serializes concurrent callers
    std::mutex m_;
    std::condition_variable cv_;      //!< new generation posted
    std::condition_variable doneCv_;  //!< all shards finished
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    Job job_;
    std::exception_ptr firstError_;   //!< guarded by m_
};

/**
 * RAII override of the pool that free parallelFor() calls dispatch to
 * on the current thread. Lets a subsystem (e.g. InferenceRuntime)
 * route the shared tensor kernels through its own pool for the scope
 * of an operation. Nestable; restores the previous pool on exit.
 */
class PoolScope
{
  public:
    explicit PoolScope(ThreadPool &pool);
    ~PoolScope();

    PoolScope(const PoolScope &) = delete;
    PoolScope &operator=(const PoolScope &) = delete;

  private:
    ThreadPool *previous_;
};

/** parallelFor on the current thread's pool (PoolScope or global). */
inline void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int)> &fn)
{
    ThreadPool::current().parallelFor(begin, end, grain, fn);
}

/**
 * Per-worker accumulator slots for a pool: one value per shard,
 * reduced in shard order so the result is deterministic.
 */
template <typename T>
class PerThread
{
  public:
    explicit PerThread(const ThreadPool &pool, T init = T{})
        : slots_(static_cast<size_t>(pool.threads()), init)
    {
    }

    T &at(int worker) { return slots_[static_cast<size_t>(worker)]; }
    const T &at(int worker) const
    {
        return slots_[static_cast<size_t>(worker)];
    }

    size_t size() const { return slots_.size(); }

    /** Fold all slots in shard order: acc = f(acc, slot). */
    template <typename F>
    T
    reduce(T acc, F f) const
    {
        for (const T &s : slots_)
            acc = f(acc, s);
        return acc;
    }

  private:
    std::vector<T> slots_;
};

} // namespace forms

#endif // FORMS_COMMON_THREADPOOL_HH
