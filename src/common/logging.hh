/**
 * @file
 * Status / error reporting in the gem5 spirit: fatal() for user error,
 * panic() for internal invariant violations, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef FORMS_COMMON_LOGGING_HH
#define FORMS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace forms {

/**
 * Terminate because of a user-caused, unrecoverable condition
 * (bad configuration, invalid arguments). Exits with code 1.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Terminate because of an internal invariant violation (a FORMS bug,
 * never the user's fault). Calls std::abort().
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Alert the user that something may be wrong but execution continues. */
void warn(const char *fmt, ...);

/** Print an informational status message. */
void inform(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

/** FORMS_ASSERT backend: panic with expression/location context. */
[[noreturn]] void panicAt(const char *expr, const char *file, int line,
                          const char *fmt, ...);

/**
 * Internal check macro: panics with expression text when `cond` is false.
 * Used for invariants that must hold regardless of user input.
 */
#define FORMS_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::forms::panicAt(#cond, __FILE__, __LINE__, __VA_ARGS__);    \
        }                                                                \
    } while (0)

} // namespace forms

#endif // FORMS_COMMON_LOGGING_HH
