/**
 * @file
 * Status / error reporting in the gem5 spirit: fatal() for user error,
 * panic() for internal invariant violations, warn()/inform()/debug()
 * for non-fatal status messages.
 *
 * Non-fatal messages are filtered by a process-wide level, read once
 * from the FORMS_LOG environment variable (debug | info | warn;
 * default info, so debug() is silent unless asked for) and overridable
 * in-process with setLogLevel(). fatal()/panic() always print —
 * terminating without saying why is never the right verbosity.
 */

#ifndef FORMS_COMMON_LOGGING_HH
#define FORMS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace forms {

/** Minimum severity that prints; ordered most to least verbose. */
enum class LogLevel
{
    Debug = 0,  //!< everything, including debug()
    Info = 1,   //!< inform() and up (the default)
    Warn = 2,   //!< warn() only (of the filterable calls)
};

/**
 * Current filter level: FORMS_LOG env (debug | info | warn) on first
 * use, unless overridden by setLogLevel(). Unknown env values warn
 * once and fall back to Info.
 */
LogLevel logLevel();

/** Override the filter level process-wide (testing / embedding hook). */
void setLogLevel(LogLevel level);

/**
 * Terminate because of a user-caused, unrecoverable condition
 * (bad configuration, invalid arguments). Exits with code 1.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Terminate because of an internal invariant violation (a FORMS bug,
 * never the user's fault). Calls std::abort().
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Alert the user that something may be wrong but execution continues.
 *  Printed at LogLevel::Warn and below. */
void warn(const char *fmt, ...);

/** Print an informational status message (LogLevel::Info and below). */
void inform(const char *fmt, ...);

/** Developer-facing detail; silent unless FORMS_LOG=debug. */
void debug(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

/** FORMS_ASSERT backend: panic with expression/location context. */
[[noreturn]] void panicAt(const char *expr, const char *file, int line,
                          const char *fmt, ...);

/**
 * Internal check macro: panics with expression text when `cond` is false.
 * Used for invariants that must hold regardless of user input.
 */
#define FORMS_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::forms::panicAt(#cond, __FILE__, __LINE__, __VA_ARGS__);    \
        }                                                                \
    } while (0)

} // namespace forms

#endif // FORMS_COMMON_LOGGING_HH
