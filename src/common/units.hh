/**
 * @file
 * Unit helpers for circuit and architecture models. All area is carried
 * in mm^2, power in mW, energy in pJ, time in ns, frequency in GHz; the
 * constexpr helpers below make literals self-documenting at call sites.
 */

#ifndef FORMS_COMMON_UNITS_HH
#define FORMS_COMMON_UNITS_HH

namespace forms {

/** Gigahertz to the internal GHz unit (identity; for readability). */
constexpr double GHz(double v) { return v; }

/** Megahertz expressed in GHz. */
constexpr double MHz(double v) { return v * 1e-3; }

/** Nanoseconds (identity; internal time unit). */
constexpr double ns(double v) { return v; }

/** Microseconds expressed in ns. */
constexpr double us(double v) { return v * 1e3; }

/** Milliwatts (identity; internal power unit). */
constexpr double mW(double v) { return v; }

/** Watts expressed in mW. */
constexpr double W(double v) { return v * 1e3; }

/** Square millimetres (identity; internal area unit). */
constexpr double mm2(double v) { return v; }

/** Cycle time in ns for a clock in GHz. */
constexpr double cycleNs(double ghz) { return 1.0 / ghz; }

/** Energy in pJ for power in mW over time in ns (mW * ns = pJ). */
constexpr double energyPj(double mw, double t_ns) { return mw * t_ns; }

} // namespace forms

#endif // FORMS_COMMON_UNITS_HH
