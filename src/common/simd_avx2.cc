/**
 * @file
 * AVX2 variants of the dispatch kernels. This translation unit is the
 * only one compiled with -mavx2 (CMake sets it per-source when
 * FORMS_SIMD=ON on x86-64); everything else must keep calling through
 * the dispatch table so a non-AVX2 machine never executes these
 * instructions. When the compiler flag is absent (FORMS_SIMD=OFF or a
 * non-x86 target) the file degrades to a null table.
 */

#include "common/simd.hh"

#if defined(__AVX2__)
#include <immintrin.h>

#include <cstring>
#endif

namespace forms::simd {
namespace detail {

#if defined(__AVX2__)

namespace {

void
addF64Avx2(double *acc, const double *x, int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_loadu_pd(acc + i);
        const __m256d vx = _mm256_loadu_pd(x + i);
        _mm256_storeu_pd(acc + i, _mm256_add_pd(va, vx));
    }
    for (; i < n; ++i)
        acc[i] += x[i];
}

void
axpyF32Avx2(float *y, const float *x, float a, int64_t n)
{
    // _mm256_mul_ps + _mm256_add_ps, never _mm256_fmadd_ps: the fused
    // form rounds once and would diverge from the scalar reference.
    const __m256 va = _mm256_set1_ps(a);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

double
dotF32Avx2(const float *a, const float *b, int64_t n)
{
    // One 4-wide double accumulator: pd lane j receives elements with
    // i % 4 == j, exactly the canonical tree (DESIGN.md §6).
    __m256d acc = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    alignas(32) double lane[kDotLanes];
    _mm256_store_pd(lane, acc);
    for (; i < n; ++i) {
        lane[i & 3] +=
            static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void
copyF32Avx2(float *dst, const float *src, int64_t n)
{
    std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

constexpr Kernels kAvx2Table = {Mode::Avx2, "avx2", addF64Avx2,
                                axpyF32Avx2, dotF32Avx2, copyF32Avx2};

} // namespace

const Kernels *
avx2Table()
{
    // Compile-time support is not runtime support: gate on cpuid so a
    // binary built on an AVX2 host still runs (scalar) anywhere.
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported ? &kAvx2Table : nullptr;
}

#else // !__AVX2__

const Kernels *
avx2Table()
{
    return nullptr;
}

#endif

} // namespace detail
} // namespace forms::simd
