#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace forms {

void
RunningStat::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(int nbins)
{
    FORMS_ASSERT(nbins > 0, "histogram needs at least one bin");
    bins_.assign(static_cast<size_t>(nbins), 0);
}

void
Histogram::add(int value)
{
    add(value, 1);
}

void
Histogram::add(int value, uint64_t weight)
{
    int b = std::clamp(value, 0, numBins() - 1);
    bins_[static_cast<size_t>(b)] += weight;
    total_ += weight;
}

uint64_t
Histogram::bin(int b) const
{
    FORMS_ASSERT(b >= 0 && b < numBins(), "bin out of range");
    return bins_[static_cast<size_t>(b)];
}

double
Histogram::fraction(int b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bin(b)) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (int b = 0; b < numBins(); ++b)
        acc += static_cast<double>(b) * static_cast<double>(bins_[b]);
    return acc / static_cast<double>(total_);
}

int
Histogram::percentile(double q) const
{
    FORMS_ASSERT(q > 0.0 && q <= 1.0, "percentile fraction out of range");
    if (total_ == 0)
        return 0;
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (int b = 0; b < numBins(); ++b) {
        acc += static_cast<double>(bins_[b]);
        if (acc >= target)
            return b;
    }
    return numBins() - 1;
}

} // namespace forms
