/**
 * @file
 * serve::Backend adapters over the offline executors.
 *
 * Both adapters borrow a constructed runtime and forward coalesced
 * micro-batches through its request-keyed entry point
 * (forwardRequests), which keys every per-presentation RNG stream by
 * the stable request id — the mechanism behind the serving
 * determinism contract (docs/SERVING.md). They are called only from
 * the server's single batcher thread, matching the runtimes'
 * one-forward-at-a-time requirement.
 */

#ifndef FORMS_SERVE_BACKENDS_HH
#define FORMS_SERVE_BACKENDS_HH

#include "serve/server.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

namespace forms::serve {

/** Serves batches on a single-chip sim::GraphRuntime. */
class GraphBackend : public Backend
{
  public:
    explicit GraphBackend(sim::GraphRuntime &rt) : rt_(rt) {}

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per_request) override;

  private:
    sim::GraphRuntime &rt_;
};

/** Serves batches on a multi-chip sim::PipelineRuntime. */
class PipelineBackend : public Backend
{
  public:
    explicit PipelineBackend(sim::PipelineRuntime &rt) : rt_(rt) {}

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per_request) override;

  private:
    sim::PipelineRuntime &rt_;
};

} // namespace forms::serve

#endif // FORMS_SERVE_BACKENDS_HH
