/**
 * @file
 * serve::Backend adapters over the offline executors.
 *
 * Both adapters borrow a constructed runtime and forward coalesced
 * micro-batches through its request-keyed entry point
 * (forwardRequests), which keys every per-presentation RNG stream by
 * the stable request id — the mechanism behind the serving
 * determinism contract (docs/SERVING.md). They are called only from
 * the server's single batcher thread, matching the runtimes'
 * one-forward-at-a-time requirement.
 */

#ifndef FORMS_SERVE_BACKENDS_HH
#define FORMS_SERVE_BACKENDS_HH

#include <memory>
#include <mutex>
#include <vector>

#include "serve/server.hh"
#include "sim/graph_runtime.hh"
#include "sim/pipeline_runtime.hh"

namespace forms::serve {

/** Serves batches on a single-chip sim::GraphRuntime. */
class GraphBackend : public Backend
{
  public:
    explicit GraphBackend(sim::GraphRuntime &rt) : rt_(rt) {}

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per_request) override;

  private:
    sim::GraphRuntime &rt_;
};

/** Serves batches on a multi-chip sim::PipelineRuntime. */
class PipelineBackend : public Backend
{
  public:
    explicit PipelineBackend(sim::PipelineRuntime &rt) : rt_(rt) {}

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per_request) override;

  private:
    sim::PipelineRuntime &rt_;
};

/**
 * Chip-failure-tolerant pipeline backend: owns its PipelineRuntime
 * and rebuilds it when a fleet chip is killed.
 *
 * killChip() (safe from any thread) marks a chip dead; the next run()
 * call observes the kill, re-partitions the graph over the surviving
 * chips, programs a fresh runtime — conductances are a pure function
 * of the seeded config, so the rebuilt fleet serves bit-identical
 * responses — and throws serve::ChipFailure to signal that the batch
 * in flight died with the chip. The server requeues that batch; its
 * retry (and every later batch) runs on the survivors. Because
 * forwardRequests keys all per-presentation randomness by request id,
 * a response served after any number of failovers still memcmp-equals
 * a single-request reference on any fleet size (docs/SERVING.md).
 *
 * When the last chip dies, run() keeps throwing ChipFailure(-1); the
 * server then drains each request's retry budget and resolves it with
 * Status::Requeued.
 *
 * Heterogeneous fleets: a killed chip's ChipSpec (or legacy capacity
 * entry) leaves with it — the surviving fleet re-partitions under the
 * surviving cost vectors.
 */
class FailoverBackend : public Backend
{
  public:
    /**
     * @param graph compiled, shape-inferred DAG (borrowed)
     * @param layers compression state (borrowed, mutable for
     *        programming) — must outlive the backend
     * @param cfg pipeline runtime config used for every (re)build
     * @param sched partitioner config for the full fleet;
     *        sched.chips is the fleet size chips are killed from
     */
    FailoverBackend(const compile::Graph &graph,
                    std::vector<admm::LayerState> &layers,
                    sim::PipelineRuntimeConfig cfg,
                    compile::ScheduleConfig sched);

    Tensor run(const Tensor &batch, const uint64_t *ids,
               std::vector<sim::RuntimeReport> &per_request) override;

    /**
     * Mark fleet chip `chip` (index into the original fleet) dead.
     * Safe from any thread; idempotent per chip. The failure takes
     * effect at the next run() on the batcher thread.
     */
    void killChip(int chip);

    /** Original fleet size. */
    int fleetChips() const { return static_cast<int>(alive_.size()); }

    /** Currently healthy chips (pending kills already counted out). */
    int aliveChips() const;

    /** Completed failovers (kills observed by run()). */
    int failovers() const;

  private:
    /** Re-partition + reprogram over the surviving chips. */
    void rebuild();

    const compile::Graph &graph_;
    std::vector<admm::LayerState> &layers_;
    sim::PipelineRuntimeConfig cfg_;
    compile::ScheduleConfig sched_;

    mutable std::mutex mu_;
    std::vector<uint8_t> alive_;     //!< by original fleet index
    std::vector<int> pendingKills_;  //!< killed, not yet observed
    int failovers_ = 0;
    std::unique_ptr<sim::PipelineRuntime> rt_;
};

} // namespace forms::serve

#endif // FORMS_SERVE_BACKENDS_HH
