#include "serve/backends.hh"

namespace forms::serve {

Tensor
GraphBackend::run(const Tensor &batch, const uint64_t *ids,
                  std::vector<sim::RuntimeReport> &per_request)
{
    per_request.clear();
    return rt_.forwardRequests(batch, ids, &per_request);
}

Tensor
PipelineBackend::run(const Tensor &batch, const uint64_t *ids,
                     std::vector<sim::RuntimeReport> &per_request)
{
    per_request.clear();
    return rt_.forwardRequests(batch, ids, &per_request);
}

FailoverBackend::FailoverBackend(const compile::Graph &graph,
                                 std::vector<admm::LayerState> &layers,
                                 sim::PipelineRuntimeConfig cfg,
                                 compile::ScheduleConfig sched)
    : graph_(graph), layers_(layers), cfg_(std::move(cfg)),
      sched_(std::move(sched))
{
    const int chips = std::max(1, sched_.chips);
    alive_.assign(static_cast<size_t>(chips), 1);
    rebuild();
    FORMS_ASSERT(rt_ != nullptr,
                 "failover backend: initial build produced no runtime");
}

void
FailoverBackend::rebuild()
{
    // Surviving cost vectors follow the surviving chips: kill chip k
    // and its ChipSpec / capacity entry disappears with it.
    int n_alive = 0;
    compile::ScheduleConfig scfg = sched_;
    scfg.chipSpecs.clear();
    scfg.capacity.clear();
    for (size_t c = 0; c < alive_.size(); ++c) {
        if (!alive_[c])
            continue;
        ++n_alive;
        if (!sched_.chipSpecs.empty())
            scfg.chipSpecs.push_back(sched_.chipSpecs[c]);
        if (sched_.chipSpecs.empty() && !sched_.capacity.empty())
            scfg.capacity.push_back(sched_.capacity[c]);
    }
    if (n_alive == 0) {
        rt_.reset();
        return;
    }
    scfg.chips = n_alive;
    rt_ = std::make_unique<sim::PipelineRuntime>(
        graph_, compile::Schedule::partition(graph_, scfg), layers_,
        cfg_);
}

void
FailoverBackend::killChip(int chip)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (chip < 0 || static_cast<size_t>(chip) >= alive_.size() ||
        !alive_[static_cast<size_t>(chip)])
        return;   // unknown or already dead: nothing to kill
    for (int pending : pendingKills_)
        if (pending == chip)
            return;
    pendingKills_.push_back(chip);
}

int
FailoverBackend::aliveChips() const
{
    std::lock_guard<std::mutex> lk(mu_);
    int n = 0;
    for (uint8_t a : alive_)
        n += a ? 1 : 0;
    return n - static_cast<int>(pendingKills_.size());
}

int
FailoverBackend::failovers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return failovers_;
}

Tensor
FailoverBackend::run(const Tensor &batch, const uint64_t *ids,
                     std::vector<sim::RuntimeReport> &per_request)
{
    // Observe at most one pending kill per batch: the chip died while
    // this batch was in flight, so its results are lost — rebuild
    // over the survivors, then tell the server to requeue.
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!pendingKills_.empty()) {
            const int chip = pendingKills_.front();
            pendingKills_.erase(pendingKills_.begin());
            alive_[static_cast<size_t>(chip)] = 0;
            ++failovers_;
            rebuild();
            throw ChipFailure(chip);
        }
    }
    if (!rt_)
        throw ChipFailure(-1);   // fleet exhausted
    per_request.clear();
    return rt_->forwardRequests(batch, ids, &per_request);
}

} // namespace forms::serve
