#include "serve/backends.hh"

namespace forms::serve {

Tensor
GraphBackend::run(const Tensor &batch, const uint64_t *ids,
                  std::vector<sim::RuntimeReport> &per_request)
{
    per_request.clear();
    return rt_.forwardRequests(batch, ids, &per_request);
}

Tensor
PipelineBackend::run(const Tensor &batch, const uint64_t *ids,
                     std::vector<sim::RuntimeReport> &per_request)
{
    per_request.clear();
    return rt_.forwardRequests(batch, ids, &per_request);
}

} // namespace forms::serve
