#include "serve/server.hh"

#include <cstring>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace forms::serve {

Backend::~Backend() = default;

ChipFailure::ChipFailure(int chip)
    : chip_(chip),
      msg_(chip >= 0
               ? strfmt("chip %d died under the in-flight batch", chip)
               : std::string("no serving chips left"))
{
}

namespace {

double
usSince(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

} // namespace

Server::Server(Backend &backend, ServerConfig cfg)
    : backend_(backend), cfg_(cfg)
{
    if (cfg_.maxBatch < 1)
        cfg_.maxBatch = 1;
    if (cfg_.maxDelayUs < 0)
        cfg_.maxDelayUs = 0;
    batcher_ = std::thread([this] { batcherLoop(); });
}

Server::~Server()
{
    shutdown();
}

std::future<Response>
Server::submit(Tensor image)
{
    return submit(std::move(image),
                  nextId_.fetch_add(1, std::memory_order_relaxed));
}

std::future<Response>
Server::submit(Tensor image, uint64_t id)
{
    std::promise<Response> promise;
    std::future<Response> fut = promise.get_future();
    const auto now = std::chrono::steady_clock::now();

    size_t depth = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
            Response r;
            r.status = Status::ShutDown;
            r.requestId = id;
            promise.set_value(std::move(r));
            return fut;
        }
        if (cfg_.queueCapacity > 0 &&
            queue_.size() >= cfg_.queueCapacity) {
            Response r;
            r.status = Status::Rejected;
            r.requestId = id;
            promise.set_value(std::move(r));
            if (cfg_.metrics)
                cfg_.metrics->counterAdd("serve.rejected", 1);
            return fut;
        }
        Pending p;
        p.id = id;
        p.image = std::move(image);
        p.promise = std::move(promise);
        p.enqueued = now;
        queue_.push_back(std::move(p));
        depth = queue_.size();
    }
    if (cfg_.metrics) {
        cfg_.metrics->counterAdd("serve.accepted", 1);
        cfg_.metrics->gaugeSet("serve.queue_depth",
                               static_cast<double>(depth));
    }
    cv_.notify_all();
    return fut;
}

void
Server::shutdown()
{
    std::call_once(shutdownOnce_, [this] {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        if (batcher_.joinable())
            batcher_.join();
    });
}

void
Server::batcherLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;   // stopping_ and fully drained

            // The oldest request anchors the deadline: flush once the
            // batch is full, the deadline passes, or shutdown begins
            // (drain immediately — queued work is still served).
            const auto deadline =
                queue_.front().enqueued +
                std::chrono::microseconds(cfg_.maxDelayUs);
            while (static_cast<int>(queue_.size()) < cfg_.maxBatch &&
                   !stopping_) {
                if (cv_.wait_until(lk, deadline) ==
                    std::cv_status::timeout)
                    break;
            }

            const size_t take =
                std::min(queue_.size(),
                         static_cast<size_t>(cfg_.maxBatch));
            batch.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            if (cfg_.metrics)
                cfg_.metrics->gaugeSet(
                    "serve.queue_depth",
                    static_cast<double>(queue_.size()));
        }
        runBatch(std::move(batch));
    }
}

void
Server::runBatch(std::vector<Pending> batch)
{
    const size_t n = batch.size();
    if (n == 0)
        return;
    const auto dispatched = std::chrono::steady_clock::now();

    // Stack the per-request samples into one batch tensor.
    const Shape &sample = batch[0].image.shape();
    Shape batch_shape;
    batch_shape.push_back(static_cast<int64_t>(n));
    for (int64_t d : sample)
        batch_shape.push_back(d);
    Tensor stacked(batch_shape);
    const int64_t sample_elems = batch[0].image.numel();
    std::vector<uint64_t> ids(n);
    for (size_t i = 0; i < n; ++i) {
        FORMS_ASSERT(batch[i].image.shape() == sample,
                     "serve: request %llu's image shape differs from "
                     "the batch's — all requests to one server must "
                     "share a shape",
                     static_cast<unsigned long long>(batch[i].id));
        std::memcpy(stacked.data() +
                        static_cast<int64_t>(i) * sample_elems,
                    batch[i].image.data(),
                    static_cast<size_t>(sample_elems) * sizeof(float));
        ids[i] = batch[i].id;
    }

    std::vector<sim::RuntimeReport> per_request;
    Tensor out;
    try {
        out = backend_.run(stacked, ids.data(), per_request);
    } catch (const ChipFailure &f) {
        // The batch died with the chip: nothing was produced, so the
        // whole batch goes back to the queue front (or terminal
        // Status::Requeued for requests out of retry budget).
        requeueBatch(std::move(batch), f.chip());
        return;
    }
    FORMS_ASSERT(out.dim(0) == static_cast<int64_t>(n) &&
                     per_request.size() == n,
                 "serve: backend returned %lld rows / %zu reports for "
                 "a batch of %zu",
                 static_cast<long long>(out.dim(0)), per_request.size(),
                 n);
    const int64_t out_elems = out.numel() / static_cast<int64_t>(n);

    const auto done = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
        Response r;
        r.status = Status::Ok;
        r.requestId = batch[i].id;
        r.logits = Tensor({out_elems});
        std::memcpy(r.logits.data(),
                    out.data() + static_cast<int64_t>(i) * out_elems,
                    static_cast<size_t>(out_elems) * sizeof(float));
        r.report = std::move(per_request[i]);
        r.batchSize = static_cast<int>(n);
        r.queueUs = usSince(batch[i].enqueued, dispatched);
        r.totalUs = usSince(batch[i].enqueued, done);
        r.requeues = batch[i].requeues;
        if (cfg_.metrics) {
            cfg_.metrics->histObserve("serve.queue_us", r.queueUs);
            cfg_.metrics->histObserve("serve.latency_us", r.totalUs);
        }
        batch[i].promise.set_value(std::move(r));
    }
    if (cfg_.metrics) {
        cfg_.metrics->counterAdd("serve.completed",
                                 static_cast<uint64_t>(n));
        cfg_.metrics->counterAdd("serve.batches", 1);
        cfg_.metrics->histObserve("serve.batch_size",
                                  static_cast<double>(n));
    }
}

void
Server::requeueBatch(std::vector<Pending> batch, int chip)
{
    uint64_t requeued = 0, dropped = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // Walk the batch back-to-front and push_front, so the batch
        // re-enters the queue head in its original order, ahead of
        // anything that arrived while it was in flight — a failed
        // request never loses its place.
        for (size_t i = batch.size(); i-- > 0;) {
            Pending &p = batch[i];
            if (p.requeues >= cfg_.maxRequeues) {
                Response r;
                r.status = Status::Requeued;
                r.requestId = p.id;
                r.requeues = p.requeues;
                p.promise.set_value(std::move(r));
                ++dropped;
                continue;
            }
            ++p.requeues;
            queue_.push_front(std::move(p));
            ++requeued;
        }
    }
    if (cfg_.metrics) {
        cfg_.metrics->counterAdd("serve.chip_failures", 1);
        if (requeued)
            cfg_.metrics->counterAdd("serve.requeued", requeued);
        if (dropped)
            cfg_.metrics->counterAdd("serve.requeue_dropped", dropped);
    }
    warn("serve: %s; requeued %llu request(s), dropped %llu",
         chip >= 0 ? strfmt("chip %d failed", chip).c_str()
                   : "no serving chips left",
         static_cast<unsigned long long>(requeued),
         static_cast<unsigned long long>(dropped));
    cv_.notify_all();
}

} // namespace forms::serve
