/**
 * @file
 * Online serving layer: dynamic micro-batching over the offline
 * runtimes.
 *
 * serve::Server accepts single-image requests from any number of
 * producer threads, coalesces them into micro-batches under a latency
 * deadline — a batch flushes when it reaches ServerConfig::maxBatch
 * images or when the oldest queued request has waited
 * ServerConfig::maxDelayUs, whichever comes first — and runs each
 * batch on a serve::Backend (a GraphRuntime or PipelineRuntime
 * adapter, serve/backends.hh). Each request's result comes back
 * through the std::future returned by submit().
 *
 * Determinism contract (docs/SERVING.md): a request's logits and
 * per-request stats depend only on (request image, request id, the
 * programmed network) — NOT on which batch the request lands in, what
 * else is in that batch, or the order requests arrived. The backend
 * keys every per-presentation RNG stream by the stable request id
 * (sim::GraphRuntime::forwardRequests), so dynamically batched
 * results are bit-identical to a single-request run with the same id.
 *
 * Admission control: the pending queue is bounded by
 * ServerConfig::queueCapacity; a submit() that finds it full resolves
 * immediately with Status::Rejected (load shedding — the request is
 * never queued). A submit() after shutdown() resolves with
 * Status::ShutDown.
 *
 * Thread-safety: submit() and shutdown() are safe from any thread,
 * concurrently. One internal batcher thread owns the backend, so the
 * (stateful) runtimes are never entered concurrently.
 */

#ifndef FORMS_SERVE_SERVER_HH
#define FORMS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "sim/runtime.hh"
#include "tensor/tensor.hh"

namespace forms::obs {
class MetricsRegistry;
} // namespace forms::obs

namespace forms::serve {

/** Terminal state of one submitted request. */
enum class Status
{
    Ok,        //!< served; logits/report/timings are valid
    Rejected,  //!< shed at admission: the pending queue was full
    ShutDown,  //!< submitted after (or during) shutdown()

    /**
     * Lost to chip failures: the request was requeued
     * ServerConfig::maxRequeues times (each time a chip died under
     * the batch serving it) and a further failure hit it — there is
     * no healthy fleet left to retry on within budget.
     */
    Requeued,
};

/**
 * Thrown by a Backend when a simulated chip dies under the batch it
 * was serving: the batch's in-flight results are lost with the chip.
 * The server catches it, pushes the batch back onto the *front* of
 * the pending queue in its original order (no request lost, none
 * duplicated) and bumps each request's requeue count; a request that
 * already spent its ServerConfig::maxRequeues budget resolves with
 * Status::Requeued instead. The throwing backend is expected to have
 * re-partitioned itself onto the surviving fleet before throwing, so
 * the retry lands on healthy chips (serve::FailoverBackend).
 */
class ChipFailure : public std::exception
{
  public:
    explicit ChipFailure(int chip);

    /** Fleet index of the chip that died (-1: no fleet left). */
    int chip() const { return chip_; }

    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    int chip_;
    std::string msg_;
};

/** What a request's future resolves to. */
struct Response
{
    Status status = Status::ShutDown;
    uint64_t requestId = 0;

    /**
     * The request's logits, flattened to one row (numel = output
     * elements per sample). Bit-identical to row 0 of a
     * single-request forwardRequests() with the same id, regardless
     * of batching (the serving determinism contract).
     */
    Tensor logits;

    /** Per-request per-layer stats, same rows as an offline report. */
    sim::RuntimeReport report;

    int batchSize = 0;     //!< images in the micro-batch that served this
    double queueUs = 0.0;  //!< submit -> batch dispatch
    double totalUs = 0.0;  //!< submit -> response ready

    /**
     * Chip-failure requeues this request survived before resolving
     * (0 on the happy path). On Status::Requeued, the spent budget.
     */
    int requeues = 0;
};

/**
 * What the server runs micro-batches on. Implementations adapt one
 * offline runtime (serve/backends.hh); called only from the server's
 * batcher thread, one batch at a time.
 */
class Backend
{
  public:
    virtual ~Backend();

    /**
     * Run one coalesced micro-batch. `ids[i]` is row i's stable
     * request id — the backend must key row i's per-presentation
     * randomness by it (forwardRequests). `per_request` receives one
     * report per row, in row order.
     */
    virtual Tensor run(const Tensor &batch, const uint64_t *ids,
                       std::vector<sim::RuntimeReport> &per_request) = 0;
};

/** Batching, admission and observability knobs. */
struct ServerConfig
{
    int maxBatch = 8;          //!< flush when this many requests queued
    int64_t maxDelayUs = 1000; //!< flush when the oldest waited this long
    size_t queueCapacity = 64; //!< pending bound; 0 = unbounded

    /**
     * Chip-failure retry budget per request: how many times a request
     * may be requeued (ChipFailure) before it resolves with
     * Status::Requeued.
     */
    int maxRequeues = 2;

    /**
     * Metrics sink (borrowed, may be null). Records the serve.*
     * counters/gauges/histograms of docs/OBSERVABILITY.md. A pure
     * observer: responses are bit-identical with or without it.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/** Dynamic micro-batching request server over one Backend. */
class Server
{
  public:
    /** Starts the batcher thread. `backend` is borrowed. */
    Server(Backend &backend, ServerConfig cfg);

    /** shutdown() (drains pending work), then joins the batcher. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submit one image (a single sample, e.g. CHW — all requests to
     * one server must share a shape) under an explicit request id.
     * The id keys the request's RNG streams: the same (image, id)
     * yields bit-identical logits whatever batch it lands in. Ids
     * need not be unique, but two in-flight requests sharing an id
     * share noise streams.
     */
    std::future<Response> submit(Tensor image, uint64_t id);

    /** Submit under the next id from the server's own counter. */
    std::future<Response> submit(Tensor image);

    /**
     * Stop admitting, serve everything already queued, stop the
     * batcher. Idempotent and safe to race from several threads;
     * returns after the batcher has exited.
     */
    void shutdown();

  private:
    struct Pending
    {
        uint64_t id = 0;
        Tensor image;
        std::promise<Response> promise;
        std::chrono::steady_clock::time_point enqueued;
        int requeues = 0;   //!< chip-failure retries so far
    };

    void batcherLoop();
    void runBatch(std::vector<Pending> batch);
    void requeueBatch(std::vector<Pending> batch, int chip);

    Backend &backend_;
    ServerConfig cfg_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Pending> queue_;   //!< guarded by mu_
    bool stopping_ = false;       //!< guarded by mu_

    std::atomic<uint64_t> nextId_{0};
    std::once_flag shutdownOnce_;
    std::thread batcher_;
};

} // namespace forms::serve

#endif // FORMS_SERVE_SERVER_HH
