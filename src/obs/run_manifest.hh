/**
 * @file
 * Run provenance stamped into every machine-readable bench artifact.
 *
 * A BENCH_*.json without a manifest is a number with no pedigree: the
 * perf trajectory cannot be tracked across machines or commits when
 * the file does not say which git sha, build type, SIMD dispatch mode
 * and thread count produced it. RunManifest::collect() captures that
 * environment once; benches append their own knobs (seeds, schedule
 * config, sweep parameters) as ordered key/value pairs; and
 * writeBenchHeader() stamps `schema_version` + `manifest` as the
 * first members of the artifact's top-level object, where
 * scripts/check_bench_schema.py validates them in CI.
 *
 * The git sha resolves, in order: the FORMS_GIT_SHA environment
 * variable (for packaged or cross-built runs), the FORMS_GIT_SHA
 * macro from the *build-time*-generated forms_git_sha.hh header
 * (cmake/git_sha.cmake re-stamps it on every build, so rebuilt
 * binaries never report a stale configure-time sha), then "unknown".
 * `schema_version` (kBenchSchemaVersion) bumps whenever the manifest
 * layout or a bench's required keys change shape.
 */

#ifndef FORMS_OBS_RUN_MANIFEST_HH
#define FORMS_OBS_RUN_MANIFEST_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.hh"

namespace forms::obs {

/** Bench-artifact schema version (see scripts/check_bench_schema.py). */
constexpr int kBenchSchemaVersion = 1;

/** Provenance of one bench/tool run. */
struct RunManifest
{
    std::string bench;         //!< emitting tool, e.g. "fig15_multichip"
    std::string gitSha;        //!< env > build-time capture > "unknown"
    std::string build;         //!< CMAKE_BUILD_TYPE of the binary
    std::string simdDispatch;  //!< resolved kernel dispatch (Mode::Auto)
    int threads = 0;           //!< process-wide ThreadPool width

    /**
     * Bench-specific knobs (seeds, schedule config, sweep axes), in
     * insertion order. Values are stored as strings; set() renders
     * numbers with the same round-trip-safe formats JsonWriter uses.
     */
    std::vector<std::pair<std::string, std::string>> config;

    /** Capture the process environment for tool `bench`. */
    static RunManifest collect(const std::string &bench);

    RunManifest &set(const std::string &key, const std::string &v);
    RunManifest &set(const std::string &key, const char *v);
    RunManifest &set(const std::string &key, int64_t v);
    RunManifest &set(const std::string &key, int v);
    RunManifest &set(const std::string &key, double v);

    /** Emit the manifest as one JSON object value. */
    void writeJson(JsonWriter &w) const;
};

/**
 * Stamp `schema_version` and `manifest` members into the (already
 * begun) top-level object of a bench artifact. Call right after
 * beginObject(), before the bench's own members.
 */
void writeBenchHeader(JsonWriter &w, const RunManifest &m);

} // namespace forms::obs

#endif // FORMS_OBS_RUN_MANIFEST_HH
