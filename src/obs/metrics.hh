/**
 * @file
 * Unified metrics registry shared by all three executors.
 *
 * Before this existed every aggregate lived in its own struct with
 * its own export path: EngineStats fields surfaced (or didn't)
 * through whichever report a bench happened to print, saturation and
 * zero-skip counters were visible only as derived fractions, and
 * transfer bytes/energy only inside PipelineReport. The registry
 * gives them one namespace and one exportable artifact
 * (metrics.json) so a dashboard or regression script reads every
 * executor through the same keys (docs/OBSERVABILITY.md lists them).
 *
 * Three instrument kinds, all keyed by dot-separated names:
 *   - counters: monotonically accumulated uint64 (exact arithmetic);
 *   - gauges: last-written double (set, not accumulated);
 *   - histograms: count/sum/min/max of observed doubles.
 *
 * Determinism: snapshots iterate name-sorted (std::map), so two
 * registries fed the same values serialize byte-identically. The
 * executors feed the registry from already-deterministic aggregates
 * (EngineStats, PipelineReport) *after* parallel execution, on one
 * thread — so metrics.json is bit-identical across thread counts for
 * the same run, which tests/test_obs.cc pins. The registry itself is
 * still mutex-guarded so concurrent counterAdd() is safe where it is
 * convenient.
 */

#ifndef FORMS_OBS_METRICS_HH
#define FORMS_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.hh"

namespace forms::obs {

/** Aggregate of one histogram's observations. */
struct HistogramStats
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  //!< meaningful only when count > 0
    double max = 0.0;

    void observe(double v);
};

/** Counters / gauges / histograms with deterministic snapshots. */
class MetricsRegistry
{
  public:
    /** Accumulate `delta` onto counter `name` (created at 0). */
    void counterAdd(const std::string &name, uint64_t delta);

    /** Set gauge `name` to `v` (last write wins). */
    void gaugeSet(const std::string &name, double v);

    /** Add one observation to histogram `name`. */
    void histObserve(const std::string &name, double v);

    /** Name-sorted copy of the registry's current state. */
    struct Snapshot
    {
        std::vector<std::pair<std::string, uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, HistogramStats>> histograms;
    };
    Snapshot snapshot() const;

    /**
     * Emit one JSON object value: {"counters": {...}, "gauges":
     * {...}, "histograms": {name: {count, sum, min, max}}}. Members
     * are name-sorted — byte-identical for equal contents.
     */
    void writeJson(JsonWriter &w) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, HistogramStats> histograms_;
};

} // namespace forms::obs

#endif // FORMS_OBS_METRICS_HH
