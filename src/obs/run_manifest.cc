#include "obs/run_manifest.hh"

#include <cstdio>
#include <cstdlib>

#include "common/simd.hh"
#include "common/threadpool.hh"

// Build-time-generated header carrying the FORMS_GIT_SHA macro (see
// cmake/git_sha.cmake). Absent when the library is compiled outside
// the CMake build (e.g. ad-hoc compile_commands tooling) — then the
// manifest falls back to the env var or "unknown".
#if defined(__has_include)
#if __has_include("forms_git_sha.hh")
#include "forms_git_sha.hh"
#endif
#endif

namespace forms::obs {

namespace {

std::string
resolveGitSha()
{
    // An explicit env override beats the build-time capture: packaged
    // binaries may have been built elsewhere, and a run from a
    // not-yet-rebuilt tree can still stamp the truth.
    if (const char *env = std::getenv("FORMS_GIT_SHA"); env && *env)
        return env;
#if defined(FORMS_GIT_SHA)
    return FORMS_GIT_SHA;
#else
    return "unknown";
#endif
}

const char *
buildTypeName()
{
#if defined(FORMS_BUILD_TYPE)
    return FORMS_BUILD_TYPE;
#else
    return "unknown";
#endif
}

} // namespace

RunManifest
RunManifest::collect(const std::string &bench)
{
    RunManifest m;
    m.bench = bench;
    m.gitSha = resolveGitSha();
    m.build = buildTypeName();
    m.simdDispatch = simd::modeName(simd::processMode());
    m.threads = ThreadPool::global().threads();
    return m;
}

RunManifest &
RunManifest::set(const std::string &key, const std::string &v)
{
    config.emplace_back(key, v);
    return *this;
}

RunManifest &
RunManifest::set(const std::string &key, const char *v)
{
    config.emplace_back(key, std::string(v));
    return *this;
}

RunManifest &
RunManifest::set(const std::string &key, int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    config.emplace_back(key, std::string(buf));
    return *this;
}

RunManifest &
RunManifest::set(const std::string &key, int v)
{
    return set(key, static_cast<int64_t>(v));
}

RunManifest &
RunManifest::set(const std::string &key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    config.emplace_back(key, std::string(buf));
    return *this;
}

void
RunManifest::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("bench", bench);
    w.field("git_sha", gitSha);
    w.field("build", build);
    w.field("simd_dispatch", simdDispatch);
    w.field("threads", threads);
    w.key("config").beginObject();
    for (const auto &[k, v] : config)
        w.field(k, v);
    w.endObject();
    w.endObject();
}

void
writeBenchHeader(JsonWriter &w, const RunManifest &m)
{
    w.field("schema_version", kBenchSchemaVersion);
    w.key("manifest");
    m.writeJson(w);
}

} // namespace forms::obs
