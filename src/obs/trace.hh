/**
 * @file
 * Chrome-trace-event / Perfetto trace sessions.
 *
 * One TraceSession collects two kinds of events and serializes them
 * as the JSON trace-event format that both chrome://tracing and
 * ui.perfetto.dev load directly:
 *
 *   - **Modeled-timeline slices** pushed explicitly by an emitter
 *     (PipelineRuntime reconstructs its per-chip stage/micro-batch
 *     timeline and quant/ADC sub-phases from the same `done[s][m]`
 *     recurrence that produces PipelineReport, so trace durations sum
 *     to ChipReport::busyNs exactly). These use slice()/flow() with
 *     caller-chosen track ids; timestamps are modeled nanoseconds
 *     from zero, not wall time.
 *   - **Wall-clock host spans** recorded by FORMS_TRACE_SCOPE around
 *     real work (compile passes, calibration, engine programming,
 *     per-node execution). Spans land in thread-local buffers — no
 *     lock, no allocation on the hot path beyond the span itself —
 *     and are merged in a deterministic order (start, duration
 *     descending, name) at flush().
 *
 * Zero overhead when disabled: FORMS_TRACE_SCOPE costs one relaxed
 * atomic load when no session is installed, and the macro's argument
 * is not evaluated. The observer invariant (DESIGN.md / the
 * determinism table) is that installing a session changes *nothing*
 * about computation — logits and EngineStats stay bit-identical —
 * which tests/test_cross_runtime_fuzz.cc enforces with a trace-on
 * axis.
 *
 * Track model: `pid` groups tracks into a named process (one per
 * chip, plus one for the host), `tid` is a named track within it.
 * Modeled and wall-clock events share one trace but never one pid,
 * so the two timebases cannot be misread as comparable.
 */

#ifndef FORMS_OBS_TRACE_HH
#define FORMS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.hh"

namespace forms::obs {

/** One slice/flow argument (shows in the Perfetto details pane). */
struct TraceArg
{
    enum class Kind { Str, Num, UInt };

    std::string key;
    Kind kind;
    std::string s;
    double d = 0.0;
    uint64_t u = 0;

    TraceArg(std::string k, std::string v)
        : key(std::move(k)), kind(Kind::Str), s(std::move(v)) {}
    TraceArg(std::string k, const char *v)
        : key(std::move(k)), kind(Kind::Str), s(v) {}
    TraceArg(std::string k, double v)
        : key(std::move(k)), kind(Kind::Num), d(v) {}
    TraceArg(std::string k, uint64_t v)
        : key(std::move(k)), kind(Kind::UInt), u(v) {}
    TraceArg(std::string k, int v)
        : key(std::move(k)), kind(Kind::Num), d(v) {}
};

/** One trace event, in trace-event-format terms. */
struct TraceEvent
{
    enum class Type {
        Complete,   //!< ph "X": a slice with ts + dur
        FlowStart,  //!< ph "s": flow arrow tail (inside a slice)
        FlowEnd,    //!< ph "f" (bp "e"): flow arrow head
    };

    Type type = Type::Complete;
    std::string name;
    std::string cat;
    int pid = 0;
    int tid = 0;
    double tsUs = 0.0;   //!< microseconds (modeled or wall, per pid)
    double durUs = 0.0;  //!< Complete only
    uint64_t flowId = 0; //!< FlowStart/FlowEnd only
    std::vector<TraceArg> args;
};

class TraceSession;

/** Active session, or null. One relaxed load; safe from any thread. */
TraceSession *activeTrace();

/** True when a session is installed (the FORMS_TRACE_SCOPE gate). */
inline bool
traceEnabled()
{
    return activeTrace() != nullptr;
}

/** Collects trace events; serializes Perfetto-loadable JSON. */
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Make this the process-wide session FORMS_TRACE_SCOPE records
     * into. Panics if another session is installed. Must be
     * uninstalled (or destroyed, which uninstalls) before another
     * session may install. Destroying while worker threads are still
     * inside traced scopes is a caller bug.
     */
    void install();
    void uninstall();

    // ---- track naming --------------------------------------------------
    void nameProcess(int pid, const std::string &name);
    void nameThread(int pid, int tid, const std::string &name);

    // ---- modeled-timeline events ----------------------------------------
    /** Complete slice on (pid, tid); times in microseconds. */
    void slice(int pid, int tid, std::string name, std::string cat,
               double tsUs, double durUs, std::vector<TraceArg> args = {});

    /**
     * Flow arrow from (fromPid, fromTid) at tsFromUs to
     * (toPid, toTid) at tsToUs. Arrows bind to the slices enclosing
     * each endpoint, so emit the endpoints inside real slices.
     */
    void flow(int fromPid, int fromTid, double tsFromUs, int toPid,
              int toTid, double tsToUs, std::string name,
              std::string cat, std::vector<TraceArg> args = {});

    // ---- wall-clock host spans (FORMS_TRACE_SCOPE backend) --------------
    /** Monotonic wall clock, ns since session construction. */
    int64_t nowNs() const;

    /** Record one host span (thread-local buffer; no lock). */
    void recordHostSpan(std::string name, int64_t startNs, int64_t endNs);

    /** pid used for wall-clock host tracks. */
    static constexpr int kHostPid = 0;

    // ---- output ----------------------------------------------------------
    /**
     * Drain thread-local host-span buffers into the event list in
     * deterministic order (start, duration descending, name), naming
     * one host track per recording thread. Idempotent; called by
     * writeJson()/events(). Not safe concurrent with recording.
     */
    void flush();

    /** All slice/flow events (metadata excluded). Flushes first. */
    const std::vector<TraceEvent> &events();

    /** Serialize the full trace document. Flushes first. */
    void writeJson(JsonWriter &w);

  private:
    struct HostSpan
    {
        std::string name;
        int64_t startNs;
        int64_t endNs;
    };

    struct ThreadBuf
    {
        std::vector<HostSpan> spans;
    };

    ThreadBuf *threadBuf();

    const uint64_t id_;         //!< unique per session, never reused
    const int64_t epochNs_;     //!< wall-clock zero point
    std::mutex mu_;             //!< guards everything below
    std::vector<TraceEvent> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
    std::vector<std::shared_ptr<ThreadBuf>> threadBufs_;
    uint64_t nextFlowId_ = 1;
};

/**
 * RAII wall-clock span. When no session is installed at construction
 * the scope is inert (one relaxed load); otherwise the span is
 * recorded into the constructing session at destruction even if the
 * session was uninstalled in between (it must still be alive).
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
    {
        if (TraceSession *s = activeTrace()) {
            session_ = s;
            name_ = name;
            startNs_ = s->nowNs();
        }
    }

    explicit TraceScope(std::string name)
    {
        if (TraceSession *s = activeTrace()) {
            session_ = s;
            name_ = std::move(name);
            startNs_ = s->nowNs();
        }
    }

    ~TraceScope()
    {
        if (session_)
            session_->recordHostSpan(std::move(name_), startNs_,
                                     session_->nowNs());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceSession *session_ = nullptr;
    std::string name_;
    int64_t startNs_ = 0;
};

// Two-level paste so __LINE__ expands before concatenation.
#define FORMS_TRACE_CAT2(a, b) a##b
#define FORMS_TRACE_CAT(a, b) FORMS_TRACE_CAT2(a, b)

/**
 * Wall-clock span covering the rest of the enclosing scope. `name`
 * should be a string literal — it is evaluated even when tracing is
 * disabled, so it must be free. For dynamic names, gate on
 * traceEnabled() and construct a TraceScope(std::string) directly so
 * the string is only built when a session is live.
 */
#define FORMS_TRACE_SCOPE(name) \
    ::forms::obs::TraceScope FORMS_TRACE_CAT(forms_trace_scope_, \
                                             __LINE__)(name)

} // namespace forms::obs

#endif // FORMS_OBS_TRACE_HH
