/**
 * @file
 * Streaming JSON writer shared by every machine-readable artifact the
 * repo emits (BENCH_*.json, metrics.json, Perfetto traces).
 *
 * Before this existed each bench hand-rolled its JSON with fprintf —
 * five separate emitters, none of which escaped strings and each of
 * which picked its own float format (the same bug class Graph::dump
 * hit in PR 5, where %g collapsed nearby calibrated scales). The
 * writer centralizes the two correctness rules:
 *
 *   - strings are always escaped (quotes, backslashes, control
 *     characters) so a node name like `blk0.add` or a future name
 *     with a quote can never corrupt an artifact, and
 *   - floating-point values print as %.9g — enough significant
 *     digits to round-trip any IEEE-754 float exactly — and
 *     non-finite values (which raw fprintf would emit as `nan`/`inf`,
 *     invalid JSON) degrade to null.
 *
 * Commas, colons and (in pretty mode) indentation are derived from a
 * container stack, so emitters cannot produce structurally invalid
 * JSON: mismatched begin/end or a value without a key panics at the
 * call site instead of writing a file that fails to parse in CI.
 *
 * Thread-safety: none (one writer, one thread), like the FILE* it
 * wraps.
 */

#ifndef FORMS_OBS_JSON_WRITER_HH
#define FORMS_OBS_JSON_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace forms::obs {

/** JSON-escape `s` (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** Structurally checked streaming JSON emitter. */
class JsonWriter
{
  public:
    /** Write to an in-memory string (see str()). */
    explicit JsonWriter(bool pretty = true);

    /** Write to an open FILE* (borrowed; caller closes). */
    explicit JsonWriter(FILE *out, bool pretty = true);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    // ---- containers --------------------------------------------------
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &k);

    // ---- values ------------------------------------------------------
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(int v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    /** %.9g: round-trips every float exactly; non-finite -> null. */
    JsonWriter &value(double v);
    JsonWriter &null();

    // ---- key + value sugar -------------------------------------------
    template <typename T>
    JsonWriter &field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /**
     * Finished document (string sink only). Panics when containers
     * are still open or the writer targets a FILE*.
     */
    const std::string &str() const;

    /** True once the single top-level value is complete and closed. */
    bool complete() const;

  private:
    enum class Frame { Object, Array };

    void emit(const char *text);
    void beforeValue();   //!< comma/key/indent bookkeeping
    void newlineIndent(size_t depth);

    FILE *out_ = nullptr;    //!< null = string sink
    std::string buf_;
    bool pretty_;
    bool done_ = false;      //!< top-level value finished
    bool havePendingKey_ = false;
    std::vector<Frame> stack_;
    std::vector<int> counts_;  //!< members written per open container
};

} // namespace forms::obs

#endif // FORMS_OBS_JSON_WRITER_HH
