#include "obs/json_writer.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace forms::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

JsonWriter::JsonWriter(FILE *out, bool pretty) : out_(out), pretty_(pretty)
{
    FORMS_ASSERT(out != nullptr, "JsonWriter: null FILE*");
}

void
JsonWriter::emit(const char *text)
{
    if (out_)
        std::fputs(text, out_);
    else
        buf_ += text;
}

void
JsonWriter::newlineIndent(size_t depth)
{
    if (!pretty_)
        return;
    std::string pad = "\n";
    pad.append(2 * depth, ' ');
    emit(pad.c_str());
}

void
JsonWriter::beforeValue()
{
    FORMS_ASSERT(!done_, "JsonWriter: document already complete");
    if (stack_.empty()) {
        // The single top-level value needs no separator.
        return;
    }
    if (stack_.back() == Frame::Object) {
        FORMS_ASSERT(havePendingKey_,
                     "JsonWriter: object member written without key()");
        havePendingKey_ = false;
        return;   // key() already emitted the separator and the key
    }
    if (counts_.back() > 0)
        emit(",");
    newlineIndent(stack_.size());
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    FORMS_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
                 "JsonWriter: key() outside an object");
    FORMS_ASSERT(!havePendingKey_,
                 "JsonWriter: key() twice without a value");
    if (counts_.back() > 0)
        emit(",");
    newlineIndent(stack_.size());
    emit(("\"" + jsonEscape(k) + (pretty_ ? "\": " : "\":")).c_str());
    havePendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    emit("{");
    stack_.push_back(Frame::Object);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    FORMS_ASSERT(!stack_.empty() && stack_.back() == Frame::Object,
                 "JsonWriter: endObject() without a matching begin");
    FORMS_ASSERT(!havePendingKey_,
                 "JsonWriter: endObject() with a dangling key");
    const int members = counts_.back();
    stack_.pop_back();
    counts_.pop_back();
    if (members > 0)
        newlineIndent(stack_.size());
    emit("}");
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    emit("[");
    stack_.push_back(Frame::Array);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    FORMS_ASSERT(!stack_.empty() && stack_.back() == Frame::Array,
                 "JsonWriter: endArray() without a matching begin");
    const int members = counts_.back();
    stack_.pop_back();
    counts_.pop_back();
    if (members > 0)
        newlineIndent(stack_.size());
    emit("]");
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    emit(("\"" + jsonEscape(v) + "\"").c_str());
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    emit(v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<int64_t>(v));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    emit(buf);
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    emit(buf);
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    beforeValue();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    emit(buf);
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    emit("null");
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
    return *this;
}

const std::string &
JsonWriter::str() const
{
    FORMS_ASSERT(out_ == nullptr,
                 "JsonWriter: str() on a FILE*-backed writer");
    FORMS_ASSERT(done_ && stack_.empty(),
                 "JsonWriter: str() before the document is complete");
    return buf_;
}

bool
JsonWriter::complete() const
{
    return done_ && stack_.empty();
}

} // namespace forms::obs
