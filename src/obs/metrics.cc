#include "obs/metrics.hh"

namespace forms::obs {

void
HistogramStats::observe(double v)
{
    if (count == 0) {
        min = v;
        max = v;
    } else {
        if (v < min)
            min = v;
        if (v > max)
            max = v;
    }
    ++count;
    sum += v;
}

void
MetricsRegistry::counterAdd(const std::string &name, uint64_t delta)
{
    std::lock_guard<std::mutex> lk(mu_);
    counters_[name] += delta;
}

void
MetricsRegistry::gaugeSet(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lk(mu_);
    gauges_[name] = v;
}

void
MetricsRegistry::histObserve(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lk(mu_);
    histograms_[name].observe(v);
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Snapshot snap;
    snap.counters.assign(counters_.begin(), counters_.end());
    snap.gauges.assign(gauges_.begin(), gauges_.end());
    snap.histograms.assign(histograms_.begin(), histograms_.end());
    return snap;
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    const Snapshot snap = snapshot();
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, v] : snap.counters)
        w.field(name, v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, v] : snap.gauges)
        w.field(name, v);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : snap.histograms) {
        w.key(name).beginObject();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace forms::obs
