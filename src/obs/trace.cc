#include "obs/trace.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace forms::obs {

namespace {

/** The one installed session (null = tracing disabled). */
std::atomic<TraceSession *> g_active{nullptr};

/** Session ids are never reused, so a stale thread-local cache entry
 *  from a destroyed session can never match a live one. */
std::atomic<uint64_t> g_nextSessionId{1};

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

TraceSession *
activeTrace()
{
    return g_active.load(std::memory_order_relaxed);
}

TraceSession::TraceSession()
    : id_(g_nextSessionId.fetch_add(1)), epochNs_(steadyNowNs())
{
}

TraceSession::~TraceSession()
{
    if (activeTrace() == this)
        uninstall();
}

void
TraceSession::install()
{
    TraceSession *expected = nullptr;
    FORMS_ASSERT(g_active.compare_exchange_strong(expected, this),
                 "TraceSession::install: another session is active");
}

void
TraceSession::uninstall()
{
    TraceSession *expected = this;
    g_active.compare_exchange_strong(expected, nullptr);
}

void
TraceSession::nameProcess(int pid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    processNames_[pid] = name;
}

void
TraceSession::nameThread(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    threadNames_[{pid, tid}] = name;
}

void
TraceSession::slice(int pid, int tid, std::string name, std::string cat,
                    double tsUs, double durUs, std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.type = TraceEvent::Type::Complete;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.pid = pid;
    ev.tid = tid;
    ev.tsUs = tsUs;
    ev.durUs = durUs;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(std::move(ev));
}

void
TraceSession::flow(int fromPid, int fromTid, double tsFromUs, int toPid,
                   int toTid, double tsToUs, std::string name,
                   std::string cat, std::vector<TraceArg> args)
{
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t id = nextFlowId_++;

    TraceEvent start;
    start.type = TraceEvent::Type::FlowStart;
    start.name = name;
    start.cat = cat;
    start.pid = fromPid;
    start.tid = fromTid;
    start.tsUs = tsFromUs;
    start.flowId = id;
    start.args = args;
    events_.push_back(std::move(start));

    TraceEvent end;
    end.type = TraceEvent::Type::FlowEnd;
    end.name = std::move(name);
    end.cat = std::move(cat);
    end.pid = toPid;
    end.tid = toTid;
    end.tsUs = tsToUs;
    end.flowId = id;
    end.args = std::move(args);
    events_.push_back(std::move(end));
}

int64_t
TraceSession::nowNs() const
{
    return steadyNowNs() - epochNs_;
}

TraceSession::ThreadBuf *
TraceSession::threadBuf()
{
    // The cache is keyed by the session's unique id: after a session
    // is destroyed its id never recurs, so a stale entry can only
    // mismatch (and be replaced), never dangle into a dead buffer.
    thread_local uint64_t cachedId = 0;
    thread_local ThreadBuf *cachedBuf = nullptr;
    if (cachedId != id_) {
        auto buf = std::make_shared<ThreadBuf>();
        cachedBuf = buf.get();
        {
            std::lock_guard<std::mutex> lk(mu_);
            threadBufs_.push_back(std::move(buf));
        }
        cachedId = id_;
    }
    return cachedBuf;
}

void
TraceSession::recordHostSpan(std::string name, int64_t startNs,
                             int64_t endNs)
{
    // Only the owning thread ever appends to its buffer; the session
    // keeps the buffer alive (shared_ptr) past thread exit.
    threadBuf()->spans.push_back(
        HostSpan{std::move(name), startNs, endNs});
}

void
TraceSession::flush()
{
    std::lock_guard<std::mutex> lk(mu_);

    struct Pending
    {
        HostSpan span;
        int tid;
    };
    std::vector<Pending> pending;
    bool anySpans = false;
    for (size_t i = 0; i < threadBufs_.size(); ++i) {
        ThreadBuf &buf = *threadBufs_[i];
        if (!buf.spans.empty())
            anySpans = true;
        const int tid = static_cast<int>(i) + 1;
        for (HostSpan &s : buf.spans)
            pending.push_back(Pending{std::move(s), tid});
        buf.spans.clear();
        threadNames_[{kHostPid, tid}] =
            "host-" + std::to_string(i);
    }
    if (!pending.empty() || anySpans)
        processNames_.emplace(kHostPid, "host (wall clock)");

    // Deterministic merge order: by start, then longer-first so an
    // enclosing span precedes its children, then name as tiebreak.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Pending &a, const Pending &b) {
                         if (a.span.startNs != b.span.startNs)
                             return a.span.startNs < b.span.startNs;
                         if (a.span.endNs != b.span.endNs)
                             return a.span.endNs > b.span.endNs;
                         return a.span.name < b.span.name;
                     });

    for (Pending &p : pending) {
        TraceEvent ev;
        ev.type = TraceEvent::Type::Complete;
        ev.name = std::move(p.span.name);
        ev.cat = "host";
        ev.pid = kHostPid;
        ev.tid = p.tid;
        ev.tsUs = static_cast<double>(p.span.startNs) / 1e3;
        ev.durUs =
            static_cast<double>(p.span.endNs - p.span.startNs) / 1e3;
        events_.push_back(std::move(ev));
    }
}

const std::vector<TraceEvent> &
TraceSession::events()
{
    flush();
    return events_;
}

namespace {

void
writeArgs(JsonWriter &w, const std::vector<TraceArg> &args)
{
    if (args.empty())
        return;
    w.key("args").beginObject();
    for (const TraceArg &a : args) {
        switch (a.kind) {
        case TraceArg::Kind::Str: w.field(a.key, a.s); break;
        case TraceArg::Kind::Num: w.field(a.key, a.d); break;
        case TraceArg::Kind::UInt: w.field(a.key, a.u); break;
        }
    }
    w.endObject();
}

} // namespace

void
TraceSession::writeJson(JsonWriter &w)
{
    flush();
    std::lock_guard<std::mutex> lk(mu_);

    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();

    for (const auto &[pid, name] : processNames_) {
        w.beginObject();
        w.field("name", "process_name");
        w.field("ph", "M");
        w.field("pid", pid);
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
        // Lower sort_index = higher in the Perfetto track list, so
        // chips (pid order) display in ascending order.
        w.beginObject();
        w.field("name", "process_sort_index");
        w.field("ph", "M");
        w.field("pid", pid);
        w.key("args").beginObject().field("sort_index", pid).endObject();
        w.endObject();
    }
    for (const auto &[key, name] : threadNames_) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", key.first);
        w.field("tid", key.second);
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : events_) {
        w.beginObject();
        w.field("name", ev.name);
        if (!ev.cat.empty())
            w.field("cat", ev.cat);
        switch (ev.type) {
        case TraceEvent::Type::Complete:
            w.field("ph", "X");
            w.field("pid", ev.pid);
            w.field("tid", ev.tid);
            w.field("ts", ev.tsUs);
            w.field("dur", ev.durUs);
            break;
        case TraceEvent::Type::FlowStart:
            w.field("ph", "s");
            w.field("pid", ev.pid);
            w.field("tid", ev.tid);
            w.field("ts", ev.tsUs);
            w.field("id", ev.flowId);
            break;
        case TraceEvent::Type::FlowEnd:
            w.field("ph", "f");
            // Bind to the enclosing slice so the arrow head attaches
            // to the consuming stage slice, not a bare timestamp.
            w.field("bp", "e");
            w.field("pid", ev.pid);
            w.field("tid", ev.tid);
            w.field("ts", ev.tsUs);
            w.field("id", ev.flowId);
            break;
        }
        writeArgs(w, ev.args);
        w.endObject();
    }

    w.endArray();
    w.endObject();
}

} // namespace forms::obs
