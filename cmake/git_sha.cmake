# Build-time git sha capture for obs::RunManifest (run via `cmake -P`
# by the forms_git_sha custom target, see the top-level CMakeLists).
#
# Inputs:  SOURCE_DIR   — the git work tree to query
#          OUTPUT_FILE  — the header to (re)generate
#
# The header is rewritten only when its content actually changed, so a
# no-op build after an unchanged HEAD stays a no-op (dependents of the
# header do not recompile on every build).

execute_process(COMMAND git rev-parse --short HEAD
                WORKING_DIRECTORY ${SOURCE_DIR}
                OUTPUT_VARIABLE FORMS_GIT_SHA
                OUTPUT_STRIP_TRAILING_WHITESPACE
                ERROR_QUIET)
if(NOT FORMS_GIT_SHA)
  set(FORMS_GIT_SHA "unknown")
endif()

set(content "// Generated at build time by cmake/git_sha.cmake — do not edit.
#define FORMS_GIT_SHA \"${FORMS_GIT_SHA}\"
")

set(existing "")
if(EXISTS ${OUTPUT_FILE})
  file(READ ${OUTPUT_FILE} existing)
endif()
if(NOT content STREQUAL existing)
  file(WRITE ${OUTPUT_FILE} "${content}")
endif()
