#!/usr/bin/env python3
"""Validate the repo's machine-readable bench artifacts.

Every BENCH_*.json must parse, carry the current `schema_version`, a
complete provenance `manifest` (see docs/OBSERVABILITY.md and
src/obs/run_manifest.hh) and the per-bench required keys below — so a
refactor that drops a field CI dashboards read, or a bench that stops
stamping provenance, fails the docs job instead of silently shipping
an artifact nobody can attribute.

Usage: python3 scripts/check_bench_schema.py [file-or-dir ...]
Arguments are artifact files or directories to glob BENCH_*.json in;
with no arguments the current directory is globbed. Exits non-zero
listing every violation. Files for benches not listed in SCHEMAS are
still checked for the version + manifest envelope.
"""

import glob
import json
import os
import sys

SCHEMA_VERSION = 1  # keep in sync with obs::kBenchSchemaVersion

MANIFEST_KEYS = ["bench", "git_sha", "build", "simd_dispatch",
                 "threads", "config"]

# Per-bench required top-level keys, plus (list key, required member
# keys) for the artifact's main array.
SCHEMAS = {
    "BENCH_runtime.json": {
        "bench": "fig13_runtime",
        "keys": ["images", "presentations", "threads", "serial_wall_ms",
                 "parallel_wall_ms", "speedup", "model_time_us",
                 "model_energy_nj"],
    },
    "BENCH_graph.json": {
        "bench": "fig14_graph_runtime",
        "keys": ["threads", "networks"],
        "list": ("networks",
                 ["name", "images", "wall_ms", "fps", "presentations",
                  "crossbars", "model_time_us", "model_energy_nj",
                  "layers"]),
    },
    "BENCH_pipeline.json": {
        "bench": "fig15_multichip_pipeline",
        "keys": ["threads", "images", "micro_batch",
                 "replicate_threshold", "max_replicas", "networks"],
        "list": ("networks", ["name", "crossbars", "chip_counts"]),
    },
    "BENCH_calibration.json": {
        "bench": "fig16_calibration",
        "keys": ["threads", "network", "test_images", "fp_accuracy",
                 "idealized_accuracy", "points"],
        "list": ("points",
                 ["policy", "calib_images", "accuracy",
                  "delta_vs_idealized", "clip_fraction",
                  "table_entries"]),
    },
    "BENCH_serving.json": {
        "bench": "serving",
        "keys": ["threads", "max_batch", "max_delay_us",
                 "queue_capacity", "bit_identical", "knee_rps",
                 "sweep"],
        "list": ("sweep",
                 ["offered_rps", "achieved_rps", "completed",
                  "rejected", "p50_us", "p95_us", "p99_us",
                  "mean_batch"]),
    },
    "BENCH_resilience.json": {
        "bench": "resilience",
        "keys": ["threads", "network", "test_images", "fp_accuracy",
                 "clean_accuracy", "recovery", "fault_points",
                 "stuck_points", "hetero_points"],
        "list": ("fault_points",
                 ["column_kill_rate", "spare_xbars",
                  "accuracy_faulted", "accuracy_remapped",
                  "recovered_fraction"]),
    },
    "BENCH_kernels.json": {
        "bench": "micro_kernels",
        "keys": ["dispatch", "build", "bit_identical", "kernels"],
        "list": ("kernels",
                 ["name", "n", "scalar_ns_op", "dispatch_ns_op",
                  "scalar_gbps", "dispatch_gbps", "speedup"]),
    },
}

# BENCH_pipeline.json nests deeper than the generic one-level list
# check: every chip-count row carries one object per scheduler mode,
# and each of those carries the zero-skip activity fields plus a
# per-chip breakdown (see bench/fig15_multichip.cc's writeMode).
PIPELINE_MODES = ["contiguous", "tile_pipelined", "replicated_tile",
                  "eic_time"]
PIPELINE_MODE_KEYS = ["modeled_fps", "bubble_fraction", "stages",
                      "max_replicas", "adc_bit_cycles",
                      "adc_skipped_cycles", "eic_fraction",
                      "logits_match_graph_runtime", "per_chip"]
PIPELINE_CHIP_KEYS = ["chip", "stage", "replicas", "utilization",
                      "busy_us", "eic_fraction"]


def check_pipeline_depth(doc):
    errors = []
    networks = doc.get("networks")
    if not isinstance(networks, list):
        return errors  # already reported by the generic list check
    for ni, net in enumerate(networks):
        points = net.get("chip_counts")
        if not isinstance(points, list) or not points:
            errors.append(f"networks[{ni}] 'chip_counts' is missing"
                          f" or empty")
            continue
        for ci, point in enumerate(points):
            where = f"networks[{ni}].chip_counts[{ci}]"
            for mode in PIPELINE_MODES:
                mobj = point.get(mode)
                if not isinstance(mobj, dict):
                    errors.append(f"{where} missing mode object"
                                  f" {mode!r}")
                    continue
                for key in PIPELINE_MODE_KEYS:
                    if key not in mobj:
                        errors.append(f"{where}.{mode} missing"
                                      f" {key!r}")
                chips = mobj.get("per_chip")
                if not isinstance(chips, list) or not chips:
                    continue  # absence reported just above
                for pi, chip in enumerate(chips):
                    for key in PIPELINE_CHIP_KEYS:
                        if key not in chip:
                            errors.append(
                                f"{where}.{mode}.per_chip[{pi}]"
                                f" missing {key!r}")
    return errors


# BENCH_resilience.json carries a recovery-gate object and a
# heterogeneous-fleet sweep the generic list check cannot reach. The
# gate must not only be present but *passing*: a CI artifact recording
# a failed recovery gate or a fleet that changed the numerics is a
# regression even if the producing process was tricked into exit 0.
RESILIENCE_RECOVERY_KEYS = ["column_kill_rate", "spare_xbars",
                            "faulted_accuracy", "remapped_accuracy",
                            "recovered_fraction", "required_fraction",
                            "faulty_crossbars", "remapped_crossbars",
                            "pass"]
RESILIENCE_HETERO_KEYS = ["label", "chips", "modeled_fps",
                          "makespan_ns", "transfer_ns",
                          "bit_identical"]


def check_resilience_depth(doc):
    errors = []
    recovery = doc.get("recovery")
    if not isinstance(recovery, dict):
        errors.append("'recovery' is missing or not an object")
    else:
        for key in RESILIENCE_RECOVERY_KEYS:
            if key not in recovery:
                errors.append(f"recovery missing {key!r}")
        if recovery.get("pass") is not True:
            errors.append("recovery gate did not pass")
        frac = recovery.get("recovered_fraction")
        need = recovery.get("required_fraction")
        if isinstance(frac, (int, float)) and \
                isinstance(need, (int, float)) and frac < need:
            errors.append(f"recovered_fraction {frac} below required"
                          f" {need}")
    fleets = doc.get("hetero_points")
    if not isinstance(fleets, list) or not fleets:
        errors.append("'hetero_points' is missing or empty")
    else:
        for i, fleet in enumerate(fleets):
            for key in RESILIENCE_HETERO_KEYS:
                if key not in fleet:
                    errors.append(f"hetero_points[{i}] missing"
                                  f" {key!r}")
            if fleet.get("bit_identical") is not True:
                errors.append(f"hetero_points[{i}]"
                              f" ({fleet.get('label')!r}) changed the"
                              f" numerics")
    return errors


# Artifacts whose nesting the generic check cannot reach get a
# dedicated validator, run after the generic one.
DEEP_CHECKS = {
    "BENCH_pipeline.json": check_pipeline_depth,
    "BENCH_resilience.json": check_resilience_depth,
}


def check_artifact(path):
    errors = []
    name = os.path.basename(path)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]

    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version is {doc.get('schema_version')!r},"
                      f" expected {SCHEMA_VERSION}")
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        errors.append("missing manifest object")
    else:
        for key in MANIFEST_KEYS:
            if key not in manifest:
                errors.append(f"manifest missing {key!r}")
        for key in ("git_sha", "build", "simd_dispatch"):
            if not manifest.get(key):
                errors.append(f"manifest {key!r} is empty")

    schema = SCHEMAS.get(name)
    if schema is None:
        return errors
    if isinstance(manifest, dict) and \
            manifest.get("bench") != schema["bench"]:
        errors.append(f"manifest bench is {manifest.get('bench')!r},"
                      f" expected {schema['bench']!r}")
    for key in schema["keys"]:
        if key not in doc:
            errors.append(f"missing required key {key!r}")
    if "list" in schema:
        list_key, member_keys = schema["list"]
        rows = doc.get(list_key)
        if not isinstance(rows, list) or not rows:
            errors.append(f"{list_key!r} is missing or empty")
        else:
            for i, row in enumerate(rows):
                for key in member_keys:
                    if key not in row:
                        errors.append(
                            f"{list_key}[{i}] missing {key!r}")
    deep = DEEP_CHECKS.get(name)
    if deep is not None:
        errors.extend(deep(doc))
    return errors


def collect_paths(args):
    paths = []
    for arg in args or ["."]:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(
                os.path.join(arg, "BENCH_*.json"))))
        else:
            paths.append(arg)
    return paths


def main():
    paths = collect_paths(sys.argv[1:])
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 1
    failures = 0
    for path in paths:
        for err in check_artifact(path):
            print(f"INVALID {path}: {err}")
            failures += 1
    if failures:
        print(f"{failures} schema violation(s)")
        return 1
    print(f"{len(paths)} bench artifact(s) conform to schema "
          f"v{SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
