#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans README.md, DESIGN.md, PAPER.md, PAPERS.md, ROADMAP.md,
CHANGES.md and everything under docs/ for [text](target) links and
checks that each relative target exists on disk (anchors are stripped;
http/https/mailto links are skipped). In README.md and docs/ only, it
also checks inline `path` references of the form src/... / tests/... /
bench/... so the subsystem maps cannot rot silently; the historical
logs (CHANGES.md etc.) may name since-moved paths freely.

Usage: python3 scripts/check_doc_links.py  (from anywhere; resolves
paths against the repo root, which is this script's parent directory).
Exits non-zero listing every broken link.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TOP_LEVEL = ["README.md", "DESIGN.md", "PAPER.md", "PAPERS.md",
             "ROADMAP.md", "CHANGES.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(r"`((?:src|tests|bench|examples|docs|scripts)/"
                     r"[A-Za-z0-9_./-]+)`")


def doc_files():
    for name in TOP_LEVEL:
        path = os.path.join(ROOT, name)
        if os.path.isfile(path):
            yield path
    docs = os.path.join(ROOT, "docs")
    if os.path.isdir(docs):
        for dirpath, _, files in os.walk(docs):
            for f in sorted(files):
                if f.endswith(".md"):
                    yield os.path.join(dirpath, f)


def check_file(path):
    broken = []
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, rel))):
            broken.append((target, "missing link target"))
    # Inline code paths are only held current in README.md and docs/;
    # historical files (CHANGES.md, DESIGN.md, ...) legitimately name
    # paths that later refactors moved.
    name = os.path.relpath(path, ROOT)
    if name == "README.md" or name.startswith("docs" + os.sep):
        for ref in PATH_RE.findall(text):
            # Tolerate globs and "foo.{hh,cc}"-style brace groups.
            if any(ch in ref for ch in "*{}"):
                continue
            if not os.path.exists(os.path.join(ROOT, ref)):
                broken.append((ref, "missing inline path reference"))
    return broken


def main():
    failures = 0
    for path in doc_files():
        for target, why in check_file(path):
            rel = os.path.relpath(path, ROOT)
            print(f"BROKEN {rel}: {target} ({why})")
            failures += 1
    if failures:
        print(f"{failures} broken reference(s)")
        return 1
    print("all documentation links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
