/**
 * @file
 * Scenario: an architect explores the FORMS design space — fragment
 * size against ADC provisioning, chip cost and delivered FPS on a
 * real workload (ResNet-50, ImageNet dimensions) — and compares the
 * sign-handling schemes' crossbar bills. Exercises the performance
 * model, circuit cost models and pipeline timing end to end.
 */

#include <cstdio>

#include "arch/pipeline.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/perf_model.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    PerfModel model;
    const Workload wl = resnet50Imagenet();
    const CompressionProfile prof{"rn50-in", 3.67, 8};

    std::printf("workload: %s, %.2f GOPs/frame, %.1fM weights\n",
                wl.name.c_str(), wl.gopsPerFrame(),
                static_cast<double>(wl.totalWeights()) / 1e6);

    Table t({"Fragment", "ADC", "ADCs/xbar", "Chip W", "Chip mm^2",
             "FPS (raw)", "FPS (calibrated)", "GOPs/W"});
    for (int frag : {4, 8, 16, 32}) {
        const ArchModel a = ArchModel::formsFull(frag, true);
        const auto r = model.evaluate(a, wl, &prof);
        t.row().cell(static_cast<int64_t>(frag))
            .cell(strfmt("%d-bit @ %.2f GHz", a.adcBits, a.adcFreqGhz))
            .cell(static_cast<int64_t>(a.adcsPerCrossbar))
            .cell(a.chipPowerMw / 1000.0, 2)
            .cell(a.chipAreaMm2, 2)
            .cell(r.fpsRaw, 0)
            .cell(r.fps, 0)
            .cell(r.gopsPerW, 1);
    }
    t.print("FORMS fragment-size design points (full optimization, "
            "zero-skip on)");

    // Per-layer bottleneck view for the chosen design point.
    const ArchModel chosen = ArchModel::formsFull(8, true);
    const auto res = model.evaluate(chosen, wl, &prof);
    Table b({"Layer", "Crossbars", "Presentations", "tau (ns)",
             "Share of frame work (%)"});
    // Show the five heaviest layers.
    std::vector<size_t> idx(res.layers.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b2) {
        return res.layers[a].workNs > res.layers[b2].workNs;
    });
    for (size_t i = 0; i < std::min<size_t>(5, idx.size()); ++i) {
        const auto &lp = res.layers[idx[i]];
        b.row().cell(wl.layers[idx[i]].name)
            .cell(lp.crossbars)
            .cell(lp.presentations)
            .cell(lp.tauNs, 1)
            .cell(100.0 * lp.workNs / res.totalWorkNs, 1);
    }
    b.print("Heaviest layers at fragment size 8");

    // Pipeline view (Figure 12) for the heaviest layer.
    const auto &hot = wl.layers[idx[0]];
    arch::PipelineConfig pcfg;
    pcfg.cycleNs = 15.2;
    const double ii_skip =
        (128.0 / 8.0) * model.effectiveBitsFor(chosen);
    const double ii_full = (128.0 / 8.0) * 16.0;
    const auto skip = arch::layerPipelineTiming(
        pcfg, static_cast<uint64_t>(hot.presentations()), ii_skip,
        hot.pools);
    const auto full = arch::layerPipelineTiming(
        pcfg, static_cast<uint64_t>(hot.presentations()), ii_full,
        hot.pools);
    std::printf("\npipeline on '%s': %.1f us with zero-skip vs %.1f us "
                "without (%.0f%% saved) for %lld presentations\n",
                hot.name.c_str(), skip.totalNs / 1000.0,
                full.totalNs / 1000.0,
                100.0 * (1.0 - skip.totalNs / full.totalNs),
                static_cast<long long>(hot.presentations()));
    return 0;
}
