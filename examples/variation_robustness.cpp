/**
 * @file
 * Scenario: a reliability engineer checks how a compressed model
 * tolerates analog non-idealities before deployment — sweeping the
 * log-normal programming variation (the paper's §V-E question) and,
 * on the same compiled model, layering the hard-fault taxonomy of
 * reram/faults.hh on top: stuck/drifted cells that degrade in place,
 * and killed bitline columns that the spare-crossbar remap pass
 * (arch/remap.hh) repairs exactly.
 *
 * Runs on the compiled GraphRuntime path — the same lower + BN-fold +
 * snapshotCompress pipeline the benches and the serving stack use —
 * so every knob here (variation sigma, fault rates, spare budget) is
 * the exact knob a deployment would set (docs/RESILIENCE.md).
 */

#include <cstdio>

#include "admm/compressor.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"
#include "reram/faults.hh"
#include "sim/graph_runtime.hh"

using namespace forms;
using namespace forms::sim;

namespace {

RuntimeConfig
baseConfig(double sigma)
{
    RuntimeConfig cfg;
    cfg.mapping.fragSize = 8;
    cfg.mapping.inputBits = 8;
    cfg.engine.adcBits = 4;
    cfg.engine.cell.variationSigma = sigma;
    return cfg;
}

} // namespace

int
main()
{
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(23);
    dcfg.trainPerClass = 16;
    dcfg.testPerClass = 6;
    dcfg.nonneg = true;
    nn::SyntheticImageDataset data(dcfg);

    std::printf("device variation + hard faults on ResNet (scaled), "
                "CIFAR-10-like task, compiled GraphRuntime path\n");

    // Train and ADMM-compress once; every configuration below
    // programs the same weights.
    Rng rng(88);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 8, 1);
    nn::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batchSize = 16;
    tcfg.seed = 89;
    nn::Trainer trainer(*net, data, tcfg);
    const double fp_acc = trainer.run().testAccuracy;

    admm::AdmmConfig acfg;
    acfg.fragSize = 8;
    acfg.policy = admm::PolarizationPolicy::CMajor;
    acfg.xbarDim = 16;
    acfg.filterKeep = 0.7;
    acfg.shapeKeep = 0.7;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 1;
    acfg.finetuneEpochs = 2;
    admm::AdmmCompressor comp(*net, data, acfg);
    comp.run();
    auto &states = comp.layers();

    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({dcfg.channels, dcfg.height, dcfg.width});
    compile::foldBatchNorm(graph, compile::FoldMode::DigitalScale);

    const Tensor &test = data.test().images;
    const std::vector<int> &labels = data.test().labels;

    // Shared fault knobs: an aged-device map (stuck + drift, which
    // remap deliberately leaves in place) and a dead-bitline map
    // (column-kill, the class the spare budget repairs).
    reram::FaultConfig aged;
    aged.stuckLrsRate = 0.005;
    aged.stuckHrsRate = 0.005;
    aged.driftRate = 0.01;
    reram::FaultMap aged_map(aged);

    reram::FaultConfig dead;
    dead.columnKillRate = 1e-3;
    reram::FaultMap dead_map(dead);

    Table t({"Sigma", "Clean (%)", "Aged cells (%)",
             "Dead cols (%)", "Dead cols + remap (%)"});
    for (double sigma : {0.0, 0.05, 0.1, 0.2}) {
        GraphRuntime clean(graph, states, baseConfig(sigma));

        RuntimeConfig acfg_rt = baseConfig(sigma);
        acfg_rt.faults = &aged_map;
        GraphRuntime aged_rt(graph, states, acfg_rt);

        RuntimeConfig dcfg_rt = baseConfig(sigma);
        dcfg_rt.faults = &dead_map;
        GraphRuntime dead_rt(graph, states, dcfg_rt);

        RuntimeConfig rcfg_rt = dcfg_rt;
        rcfg_rt.remapFaults = true;
        rcfg_rt.mapping.spareXbars = 32;
        GraphRuntime remap_rt(graph, states, rcfg_rt);

        t.row().cell(sigma, 2)
            .cell(clean.accuracy(test, labels) * 100.0, 1)
            .cell(aged_rt.accuracy(test, labels) * 100.0, 1)
            .cell(dead_rt.accuracy(test, labels) * 100.0, 1)
            .cell(remap_rt.accuracy(test, labels) * 100.0, 1);
    }
    t.print(strfmt("Accuracy vs variation and faults (FP acc %.1f%%, "
                   "%d test images)", fp_acc * 100.0,
                   static_cast<int>(test.dim(0))));

    std::printf("\nReading: polarization keeps the signs digital, so "
                "variation and aged cells degrade gracefully; dead "
                "columns lose whole output slices until the remap "
                "pass reroutes the affected tiles onto spares — with "
                "enough spares the last column matches the clean one "
                "bit for bit (docs/RESILIENCE.md).\n");
    return 0;
}
