/**
 * @file
 * Scenario: a reliability engineer checks how a compressed model
 * tolerates ReRAM device variation before deployment — sweeping the
 * log-normal sigma and comparing the original network against its
 * polarized and pruned versions (the paper's §V-E question).
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace forms;
using namespace forms::sim;

int
main()
{
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(23);
    dcfg.trainPerClass = 16;
    dcfg.testPerClass = 6;

    std::printf("sweeping device variation on ResNet18 (scaled), "
                "CIFAR-10-like task\n");

    Table t({"Sigma", "Original (pp)", "Polarization only (pp)",
             "Pruning only (pp)", "Full optimization (pp)"});
    for (double sigma : {0.05, 0.1, 0.2}) {
        VariationStudyConfig vcfg;
        vcfg.sigma = sigma;
        vcfg.runs = 15;
        auto rows = runVariationExperiment(
            NetKind::ResNetSmall, dcfg, vcfg, 0.6, 0.6,
            /*pretrain_epochs=*/6, /*seed=*/88);
        t.row().cell(sigma, 2)
            .cell(rows[0].degradationPct, 2)
            .cell(rows[1].degradationPct, 2)
            .cell(rows[2].degradationPct, 2)
            .cell(rows[3].degradationPct, 2);
    }
    t.print("Accuracy degradation vs device variation");

    std::printf("\nReading: polarization is variation-neutral (signs "
                "are digital); pruning trades robustness for area "
                "because every surviving weight matters more. Matches "
                "the paper's Table VI conclusion.\n");
    return 0;
}
