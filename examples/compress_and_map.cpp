/**
 * @file
 * Scenario: compress a ResNet-style network for ReRAM deployment and
 * inspect the per-layer outcome — kept structure, fragment signs,
 * quantization grid and crossbar budget under the FORMS mapping vs.
 * the 32-bit splitting baseline. This is the workflow a model owner
 * runs before committing silicon area.
 */

#include <cstdio>

#include "admm/report.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"

using namespace forms;

int
main()
{
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(17);
    dcfg.trainPerClass = 20;
    dcfg.testPerClass = 6;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(3);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 10);
    nn::TrainConfig tcfg;
    tcfg.epochs = 6;
    tcfg.batchSize = 16;
    nn::Trainer trainer(*net, data, tcfg);
    auto tres = trainer.run();
    std::printf("pretrained ResNet18 (scaled): %.1f%% test accuracy\n",
                tres.testAccuracy * 100.0);

    admm::AdmmConfig acfg;
    acfg.fragSize = 8;
    acfg.policy = admm::PolarizationPolicy::CMajor;   // CIFAR pick
    acfg.xbarDim = 16;
    acfg.filterKeep = 0.7;
    acfg.shapeKeep = 0.7;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 2;
    acfg.finetuneEpochs = 2;
    admm::AdmmCompressor comp(*net, data, acfg);
    auto outcome = comp.run();

    auto report = admm::buildReport(
        comp, outcome, admm::baselineMapping32(16, 16),
        admm::formsMapping(8, 16, 16));

    Table t({"Layer", "Shape (rows x cols)", "Kept", "Baseline xbars",
             "FORMS xbars", "+frags/col"});
    for (size_t i = 0; i < report.layers.size(); ++i) {
        const auto &lr = report.layers[i];
        const auto &st = comp.layers()[i];
        t.row().cell(lr.name)
            .cell(strfmt("%lld x %lld", (long long)lr.rows,
                         (long long)lr.cols))
            .cell(strfmt("%lld x %lld", (long long)lr.keptRows,
                         (long long)lr.keptCols))
            .cell(lr.baselineCrossbars)
            .cell(lr.formsCrossbars)
            .cell(st.plan.fragmentsPerCol());
    }
    t.print("Per-layer compression & mapping");

    std::printf("\nprune ratio %.2fx | crossbar reduction %.1fx "
                "(%lld -> %lld) | accuracy %.1f%% -> %.1f%% | "
                "sign violations %lld\n",
                report.pruneRatio, report.crossbarReduction,
                static_cast<long long>(report.baselineCrossbars),
                static_cast<long long>(report.formsCrossbars),
                report.accuracyBefore * 100.0,
                report.accuracyAfter * 100.0,
                static_cast<long long>(outcome.signViolations));

    // Show a few fragments' signs from the first conv layer.
    const auto &st = comp.layers().front();
    std::printf("\nfirst fragments of '%s' (column 0): ",
                st.name.c_str());
    for (int64_t f = 0;
         f < std::min<int64_t>(8, st.plan.fragmentsPerCol()); ++f)
        std::printf("%c", st.signs->get(0, f) > 0 ? '+' : '-');
    std::printf("  (each sign lives in the 1R indicator, not on the "
                "crossbar)\n");
    return 0;
}
