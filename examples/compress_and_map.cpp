/**
 * @file
 * Scenario: compress a ResNet-style network for ReRAM deployment and
 * inspect the per-layer outcome — kept structure, fragment signs,
 * quantization grid and crossbar budget under the FORMS mapping vs.
 * the 32-bit splitting baseline. This is the workflow a model owner
 * runs before committing silicon area.
 *
 * The final section compiles the same network for execution: lower to
 * the graph IR, fold the BatchNorm layers into the convs' digital
 * output stage (the ADMM-constrained weights map unchanged), and
 * print the crossbar allocation per graph node of the resulting
 * GraphRuntime — the deployable artifact — plus its accuracy on the
 * simulated crossbars.
 */

#include <algorithm>
#include <cstdio>

#include "admm/report.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "compile/passes.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"
#include "sim/graph_runtime.hh"

using namespace forms;

int
main()
{
    nn::DatasetConfig dcfg = nn::DatasetConfig::cifar10Like(17);
    dcfg.trainPerClass = 20;
    dcfg.testPerClass = 6;
    // Train on unsigned-domain pixels (like real sensor data) so the
    // crossbar runtime's unsigned input encoding is exact end to end.
    dcfg.nonneg = true;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(3);
    auto net = nn::buildResNetSmall(rng, dcfg.classes, 10);
    nn::TrainConfig tcfg;
    tcfg.epochs = 6;
    tcfg.batchSize = 16;
    nn::Trainer trainer(*net, data, tcfg);
    auto tres = trainer.run();
    std::printf("pretrained ResNet18 (scaled): %.1f%% test accuracy\n",
                tres.testAccuracy * 100.0);

    admm::AdmmConfig acfg;
    acfg.fragSize = 8;
    acfg.policy = admm::PolarizationPolicy::CMajor;   // CIFAR pick
    acfg.xbarDim = 16;
    acfg.filterKeep = 0.7;
    acfg.shapeKeep = 0.7;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 2;
    acfg.finetuneEpochs = 3;
    admm::AdmmCompressor comp(*net, data, acfg);
    auto outcome = comp.run();

    auto report = admm::buildReport(
        comp, outcome, admm::baselineMapping32(16, 16),
        admm::formsMapping(8, 16, 16));

    Table t({"Layer", "Shape (rows x cols)", "Kept", "Baseline xbars",
             "FORMS xbars", "+frags/col"});
    for (size_t i = 0; i < report.layers.size(); ++i) {
        const auto &lr = report.layers[i];
        const auto &st = comp.layers()[i];
        t.row().cell(lr.name)
            .cell(strfmt("%lld x %lld", (long long)lr.rows,
                         (long long)lr.cols))
            .cell(strfmt("%lld x %lld", (long long)lr.keptRows,
                         (long long)lr.keptCols))
            .cell(lr.baselineCrossbars)
            .cell(lr.formsCrossbars)
            .cell(st.plan.fragmentsPerCol());
    }
    t.print("Per-layer compression & mapping");

    std::printf("\nprune ratio %.2fx | crossbar reduction %.1fx "
                "(%lld -> %lld) | accuracy %.1f%% -> %.1f%% | "
                "sign violations %lld\n",
                report.pruneRatio, report.crossbarReduction,
                static_cast<long long>(report.baselineCrossbars),
                static_cast<long long>(report.formsCrossbars),
                report.accuracyBefore * 100.0,
                report.accuracyAfter * 100.0,
                static_cast<long long>(outcome.signViolations));

    // Show a few fragments' signs from the first conv layer.
    const auto &st = comp.layers().front();
    std::printf("\nfirst fragments of '%s' (column 0): ",
                st.name.c_str());
    for (int64_t f = 0;
         f < std::min<int64_t>(8, st.plan.fragmentsPerCol()); ++f)
        std::printf("%c", st.signs->get(0, f) > 0 ? '+' : '-');
    std::printf("  (each sign lives in the 1R indicator, not on the "
                "crossbar)\n");

    // ---- compile -> fold -> map onto the DAG runtime ----------------
    // Folding after ADMM compression must not touch the constrained
    // weights (per-channel rescaling would break the layer's single
    // quantization grid), so the BN scale/shift lands in the digital
    // output stage and the compressor's layer states map unchanged.
    auto graph = compile::lowerNetwork(*net);
    graph.inferShapes({dcfg.channels, dcfg.height, dcfg.width});
    const int folded =
        compile::foldBatchNorm(graph, compile::FoldMode::DigitalScale);

    sim::RuntimeConfig rcfg;
    rcfg.mapping.xbarRows = 64;
    rcfg.mapping.xbarCols = 64;
    rcfg.mapping.fragSize = acfg.fragSize;
    rcfg.mapping.inputBits = 12;
    rcfg.engine.adcBits = 4;
    sim::GraphRuntime rt(graph, comp.layers(), rcfg);

    Table gt({"Node", "Output shape", "Crossbars"});
    for (const auto &a : rt.allocation()) {
        gt.row().cell(a.name)
            .cell(shapeStr(a.outShape))
            .cell(a.crossbars);
    }
    gt.print(strfmt("Compiled graph: %zu nodes (%d BN folded), %zu "
                    "programmed, %lld crossbars",
                    rt.nodes(), folded, rt.programmedNodes(),
                    static_cast<long long>(rt.totalCrossbars())));

    // Functional-simulation accuracy on a subset (full test split
    // would take minutes of host time at this fidelity).
    const int64_t eval_n =
        std::min<int64_t>(20, data.test().images.dim(0));
    const int64_t img_sz = data.test().images.numel() /
        data.test().images.dim(0);
    Tensor eval_images({eval_n, dcfg.channels, dcfg.height, dcfg.width});
    for (int64_t i = 0; i < eval_n * img_sz; ++i)
        eval_images.at(i) = data.test().images.at(i);
    std::vector<int> eval_labels(data.test().labels.begin(),
                                 data.test().labels.begin() + eval_n);
    const double fp_acc = net->accuracy(eval_images, eval_labels);
    const double gacc = rt.accuracy(eval_images, eval_labels);
    std::printf("\nGraphRuntime accuracy on simulated crossbars: "
                "%.1f%% (FP forward of the same compressed net: "
                "%.1f%%, %lld images)\n", gacc * 100.0, fp_acc * 100.0,
                static_cast<long long>(eval_n));
    return 0;
}
