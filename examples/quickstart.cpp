/**
 * @file
 * FORMS quickstart: the whole pipeline on one page.
 *
 *   1. train a small CNN on a synthetic dataset,
 *   2. compress it with ADMM (crossbar-aware pruning, fragment
 *      polarization, ReRAM-customized quantization),
 *   3. map the compressed weights onto simulated ReRAM crossbars
 *      (magnitudes only + 1R sign indicator),
 *   4. execute a matrix-vector product in-situ with bit-serial inputs
 *      and zero-skipping, and verify against the digital reference.
 */

#include <cstdio>

#include "arch/engine.hh"
#include "nn/trainer.hh"
#include "nn/zoo.hh"

using namespace forms;

int
main()
{
    // ---- 1. data + training ----------------------------------------
    nn::DatasetConfig dcfg;
    dcfg.classes = 4;
    dcfg.channels = 1;
    dcfg.height = 12;
    dcfg.width = 12;
    dcfg.trainPerClass = 32;
    dcfg.testPerClass = 16;
    dcfg.noise = 0.35f;
    dcfg.seed = 7;
    nn::SyntheticImageDataset data(dcfg);

    Rng rng(1);
    auto net = nn::buildTinyConvNet(rng, dcfg.classes, 8, 1, 12);
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batchSize = 16;
    nn::Trainer trainer(*net, data, tcfg);
    auto train_res = trainer.run();
    std::printf("[1] trained: test accuracy %.1f%%\n",
                train_res.testAccuracy * 100.0);

    // ---- 2. ADMM compression ---------------------------------------
    admm::AdmmConfig acfg;
    acfg.fragSize = 4;          // sub-array rows (fragment size m)
    acfg.xbarDim = 8;           // scaled crossbar extent
    acfg.filterKeep = 0.75;
    acfg.shapeKeep = 0.75;
    acfg.quantBits = 8;
    acfg.admmEpochsPerPhase = 2;
    acfg.finetuneEpochs = 2;
    acfg.train.batchSize = 16;
    admm::AdmmCompressor compressor(*net, data, acfg);
    auto outcome = compressor.run();
    std::printf("[2] compressed: prune %.2fx, accuracy %.1f%% -> "
                "%.1f%%, sign violations %lld\n",
                outcome.pruneRatio, outcome.accuracyBefore * 100.0,
                outcome.accuracyAfter * 100.0,
                static_cast<long long>(outcome.signViolations));

    // ---- 3. map the first conv layer onto crossbars -----------------
    arch::MappingConfig mcfg;
    mcfg.xbarRows = 16;
    mcfg.xbarCols = 16;
    mcfg.fragSize = 4;
    mcfg.weightBits = 8;
    mcfg.inputBits = 12;
    auto &layer0 = compressor.layers().front();
    arch::MappedLayer mapped = arch::mapLayer(layer0, mcfg);
    std::printf("[3] mapped '%s': %lld crossbars for %lld x %lld "
                "weights (magnitudes + sign indicator)\n",
                layer0.name.c_str(),
                static_cast<long long>(mapped.numCrossbars()),
                static_cast<long long>(mapped.logicalRows),
                static_cast<long long>(mapped.logicalCols));

    // ---- 4. batched in-situ MVMs with zero-skipping -----------------
    // A whole batch of input patches streams through the engine at
    // once; presentations shard across the thread pool and the result
    // is bit-identical to a serial mvm() loop.
    arch::EngineConfig ecfg;
    ecfg.adcBits = 0;   // lossless ADC: integer-exact
    arch::CrossbarEngine engine(mapped, ecfg);

    const Tensor &img = data.test().images;
    std::vector<std::vector<uint32_t>> batch;
    for (int n = 0; n < 4; ++n) {
        std::vector<float> patch;
        for (int dy = 0; dy < 3; ++dy)
            for (int dx = 0; dx < 3; ++dx)
                patch.push_back(
                    std::max(0.0f, img.at(n, 0, 4 + dy, 4 + dx)));
        batch.push_back(arch::quantizeActivations(patch, mcfg.inputBits,
                                                  nullptr));
    }

    arch::EngineStats stats;
    auto analog = engine.mvmBatch(batch, &stats);

    bool exact = true;
    for (size_t n = 0; n < batch.size(); ++n) {
        auto reference = arch::referenceMvm(mapped, batch[n]);
        for (size_t i = 0; i < analog[n].size(); ++i)
            exact = exact &&
                analog[n][i] == static_cast<double>(reference[i]);
    }
    std::printf("[4] batched in-situ MVM (%zu presentations, %d "
                "threads): %s vs digital reference; %.0f%% of input "
                "bit cycles skipped, %llu ADC samples, %.1f pJ ADC "
                "energy\n",
                batch.size(), ThreadPool::global().threads(),
                exact ? "EXACT" : "MISMATCH",
                stats.skipFraction() * 100.0,
                static_cast<unsigned long long>(stats.adcSamples),
                stats.adcEnergyPj);
    return exact ? 0 : 1;
}
